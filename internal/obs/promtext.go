package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4), beside the JSON /debug/metrics
// view. The dotted registry namespace maps onto Prometheus conventions:
//
//	counter  ts.out            -> fpdm_ts_out_total
//	gauge    plinda.procs.live -> fpdm_plinda_procs_live
//	shard    ts.shard.3.tuples -> fpdm_ts_shard_tuples{shard="3"}
//	hist     net.op.in         -> fpdm_net_op_seconds{op="in",le=...}
//	hist     plinda.txn        -> fpdm_plinda_txn_seconds{le=...}
//
// Histogram buckets are cumulative with an explicit +Inf bucket, and
// durations are exported in seconds, so histogram_quantile and rate()
// work as usual. When t is non-nil the tracer's event and dropped
// totals are exported as fpdm_trace_events_total and
// fpdm_trace_dropped_total.
func WritePrometheus(w io.Writer, s Snapshot, t *Tracer) error {
	var b strings.Builder

	counters := make(map[string]int64, len(s.Counters)+2)
	for name, v := range s.Counters {
		counters[name] = v
	}
	if t != nil {
		counters["trace.events"] = int64(t.Total())
		counters["trace.dropped"] = int64(t.Dropped())
	}
	nodeCounters := map[string][]string{} // family -> sample lines
	var plainCounters []string
	for _, name := range sortedKeys(counters) {
		if node, rest, ok := splitNodeName(name); ok {
			fam := "fpdm_" + sanitizeMetricName(rest) + "_total"
			nodeCounters[fam] = append(nodeCounters[fam],
				fmt.Sprintf("%s{node=%q} %d", fam, node, counters[name]))
		} else {
			plainCounters = append(plainCounters, name)
		}
	}
	for _, name := range plainCounters {
		fam := "fpdm_" + sanitizeMetricName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", fam, fam, counters[name])
	}
	for _, fam := range sortedKeys(nodeCounters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n", fam)
		for _, line := range nodeCounters[fam] {
			b.WriteString(line + "\n")
		}
	}

	// Per-shard gauges collapse into one family with a shard label and
	// per-node cluster gauges into one with a node label; everything
	// else exports under its own name.
	shardFamilies := map[string][]string{} // family -> sample lines
	var plain []string
	for _, name := range sortedKeys(s.Gauges) {
		if shard, rest, ok := splitShardName(name); ok {
			fam := "fpdm_" + sanitizeMetricName(rest)
			shardFamilies[fam] = append(shardFamilies[fam],
				fmt.Sprintf("%s{shard=%q} %d", fam, shard, s.Gauges[name]))
		} else if node, rest, ok := splitNodeName(name); ok {
			fam := "fpdm_" + sanitizeMetricName(rest)
			shardFamilies[fam] = append(shardFamilies[fam],
				fmt.Sprintf("%s{node=%q} %d", fam, node, s.Gauges[name]))
		} else {
			plain = append(plain, name)
		}
	}
	for _, fam := range sortedKeys(shardFamilies) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n", fam)
		for _, line := range shardFamilies[fam] {
			b.WriteString(line + "\n")
		}
	}
	for _, name := range plain {
		fam := "fpdm_" + sanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", fam, fam, s.Gauges[name])
	}

	// Wire-op histograms share one family with an op label; other
	// histograms get their own family. Group label sets per family so
	// each # TYPE header is emitted once.
	type series struct{ labels, name string }
	hists := map[string][]series{} // family -> series
	for _, name := range sortedKeys(s.Histograms) {
		fam, labels := "fpdm_"+sanitizeMetricName(name)+"_seconds", ""
		if op, ok := strings.CutPrefix(name, "net.op."); ok {
			fam, labels = "fpdm_net_op_seconds", fmt.Sprintf("op=%q", op)
		} else if op, ok := strings.CutPrefix(name, "cluster.op."); ok {
			fam, labels = "fpdm_cluster_op_seconds", fmt.Sprintf("op=%q", op)
		}
		hists[fam] = append(hists[fam], series{labels: labels, name: name})
	}
	for _, fam := range sortedKeys(hists) {
		fmt.Fprintf(&b, "# TYPE %s histogram\n", fam)
		for _, ser := range hists[fam] {
			writeHistogram(&b, fam, ser.labels, s.Histograms[ser.name])
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits one labeled histogram series: cumulative
// _bucket lines, then _sum (seconds) and _count.
func writeHistogram(b *strings.Builder, fam, labels string, h HistogramSnapshot) {
	join := func(le string) string {
		if labels == "" {
			return "le=" + le
		}
		return labels + ",le=" + le
	}
	var cum int64
	for _, bk := range h.Buckets {
		if bk.UpperNanos < 0 {
			continue // overflow counts land in the +Inf bucket below
		}
		cum += bk.Count
		le := strconv.FormatFloat(float64(bk.UpperNanos)/1e9, 'g', -1, 64)
		fmt.Fprintf(b, "%s_bucket{%s} %d\n", fam, join(strconv.Quote(le)), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s} %d\n", fam, join(`"+Inf"`), h.Count)
	sumLabels := ""
	if labels != "" {
		sumLabels = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", fam, sumLabels,
		strconv.FormatFloat(float64(h.SumNanos)/1e9, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", fam, sumLabels, h.Count)
}

// splitShardName recognizes per-shard gauge names of the form
// "<prefix>.shard.<i>.<suffix>" and returns the shard index and the
// name with the shard component removed ("<prefix>.shard.<suffix>").
func splitShardName(name string) (shard, rest string, ok bool) {
	i := strings.Index(name, ".shard.")
	if i < 0 {
		return "", "", false
	}
	tail := name[i+len(".shard."):]
	j := strings.IndexByte(tail, '.')
	if j < 0 {
		return "", "", false
	}
	if _, err := strconv.Atoi(tail[:j]); err != nil {
		return "", "", false
	}
	return tail[:j], name[:i] + ".shard" + tail[j:], true
}

// splitNodeName recognizes per-node cluster instrument names of the
// form "cluster.node.<i>.<suffix>" and returns the node index and the
// name with the index removed ("cluster.node.<suffix>"), so the
// cluster router's per-node series collapse into one labeled family.
func splitNodeName(name string) (node, rest string, ok bool) {
	tail, found := strings.CutPrefix(name, "cluster.node.")
	if !found {
		return "", "", false
	}
	j := strings.IndexByte(tail, '.')
	if j < 0 {
		return "", "", false
	}
	if _, err := strconv.Atoi(tail[:j]); err != nil {
		return "", "", false
	}
	return tail[:j], "cluster.node" + tail[j:], true
}

func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// CheckPrometheusText is a strict validity check over a text-format
// exposition: every line must be a comment or a well-formed sample,
// every sample's family must have a # TYPE declaration, histogram
// families must carry _bucket/_sum/_count series with le labels, and
// cumulative bucket counts must be nondecreasing. The CI smoke step
// scrapes a live /metrics endpoint through it.
func CheckPrometheusText(r io.Reader) error {
	types := map[string]string{}              // family -> declared type
	histParts := map[string]map[string]bool{} // histogram family -> seen suffixes
	lastBucket := map[string]struct {
		le  float64
		cum int64
	}{} // family+labels-sans-le -> last cumulative point
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	samples := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 2 && f[1] == "TYPE" {
				if len(f) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				switch f[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, f[3])
				}
				types[f[2]] = f[3]
				if f[3] == "histogram" {
					histParts[f[2]] = map[string]bool{}
				}
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		samples++
		fam, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, s); ok && types[base] == "histogram" {
				fam, suffix = base, s
				break
			}
		}
		if _, ok := types[fam]; !ok {
			return fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, name)
		}
		if types[fam] == "histogram" {
			if suffix == "" {
				return fmt.Errorf("line %d: histogram sample %q lacks _bucket/_sum/_count suffix", lineNo, name)
			}
			histParts[fam][suffix] = true
			if suffix == "_bucket" {
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: bucket sample %q without le label", lineNo, name)
				}
				bound, err := parseLE(le)
				if err != nil {
					return fmt.Errorf("line %d: %v", lineNo, err)
				}
				cum, err := strconv.ParseInt(value, 10, 64)
				if err != nil {
					return fmt.Errorf("line %d: bucket count %q is not an integer", lineNo, value)
				}
				key := fam + "|" + labelKeySansLE(labels)
				if last, ok := lastBucket[key]; ok {
					if bound <= last.le {
						return fmt.Errorf("line %d: bucket le %q not increasing", lineNo, le)
					}
					if cum < last.cum {
						return fmt.Errorf("line %d: cumulative bucket count decreased (%d < %d)", lineNo, cum, last.cum)
					}
				}
				lastBucket[key] = struct {
					le  float64
					cum int64
				}{bound, cum}
			}
		} else if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: value %q is not a float", lineNo, value)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	for fam, parts := range histParts {
		for _, want := range []string{"_bucket", "_sum", "_count"} {
			if !parts[want] {
				return fmt.Errorf("histogram %s missing %s series", fam, want)
			}
		}
	}
	return nil
}

// parsePromSample splits one sample line into its metric name, label
// map, and value text.
func parsePromSample(line string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", nil, "", fmt.Errorf("unbalanced braces in %q", line)
		}
		for _, pair := range splitLabels(rest[i+1 : j]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return "", nil, "", fmt.Errorf("malformed label %q", pair)
			}
			if !promLabelRe.MatchString(k) {
				return "", nil, "", fmt.Errorf("invalid label name %q", k)
			}
			uq, uerr := strconv.Unquote(v)
			if uerr != nil {
				return "", nil, "", fmt.Errorf("label value %q not quoted", v)
			}
			labels[k] = uq
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, "", fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], strings.Join(fields[1:], " ")
	}
	if !promNameRe.MatchString(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return "", nil, "", fmt.Errorf("malformed sample %q", line)
	}
	return name, labels, fields[0], nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}

func parseLE(le string) (float64, error) {
	if le == "+Inf" {
		return float64(1 << 62), nil
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, fmt.Errorf("le value %q is not a float", le)
	}
	return v, nil
}

func labelKeySansLE(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k+"="+labels[k])
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}
