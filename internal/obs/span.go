package obs

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"time"
)

// ID is a 64-bit trace or span identifier. It marshals as a 16-digit
// hex string so exported traces survive JSON tooling that loses
// integer precision above 2^53. The zero ID means "absent".
type ID uint64

// String renders the ID as 16 lowercase hex digits.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the ID as a quoted hex string.
func (id ID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON accepts the quoted hex form produced by MarshalJSON.
func (id *ID) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return err
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return err
	}
	*id = ID(v)
	return nil
}

// newID returns a nonzero random identifier.
func newID() ID {
	for {
		if v := rand.Uint64(); v != 0 {
			return ID(v)
		}
	}
}

// SpanContext identifies one span within one trace. It is the unit of
// cross-process propagation: the wire protocol carries it as two
// uint64s in the request header, and the tuple space stamps stored
// tuples with the producer's span context so consumers can join the
// producer's trace. The zero value means "not traced".
type SpanContext struct {
	Trace ID
	Span  ID
}

// Valid reports whether the context identifies a sampled trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

type spanCtxKey struct{}

// ContextWith returns a context carrying sc, for propagation through
// ctx-taking call chains (InCtx, wire handlers, ...).
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// FromContext extracts the span context placed by ContextWith, or the
// zero SpanContext.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// Span is one in-flight timed operation within a trace. It is created
// by a Tracer's Start* methods and emitted into the ring buffer as an
// Event (carrying its trace, span, and parent IDs) by End. A nil *Span
// is a valid no-op receiver, so unsampled paths cost one branch.
//
// A Span is used by a single goroutine.
type Span struct {
	t      *Tracer
	sc     SpanContext
	parent ID
	kind   string
	name   string
	start  time.Time
	attrs  []any
}

// StartRoot begins a new trace with this span at its root, subject to
// the tracer's sample rate. Returns nil (no-op span) when the tracer is
// nil or the trace is not sampled.
func (t *Tracer) StartRoot(kind, name string, attrs ...any) *Span {
	if t == nil || !t.sampled() {
		return nil
	}
	return t.StartRootTrace(newID(), kind, name, attrs...)
}

// NewTrace allocates a trace ID subject to the sample rate (zero when
// not sampled). Logical processes allocate their trace once at spawn
// and root every incarnation in it via StartRootTrace, so spans from
// before a crash and after recovery share one trace.
func (t *Tracer) NewTrace() ID {
	if t == nil || !t.sampled() {
		return 0
	}
	return newID()
}

// StartRootTrace begins a root span (no parent) inside an existing
// trace. Returns nil when the tracer is nil or trace is zero.
func (t *Tracer) StartRootTrace(trace ID, kind, name string, attrs ...any) *Span {
	if t == nil || trace == 0 {
		return nil
	}
	return &Span{
		t:     t,
		sc:    SpanContext{Trace: trace, Span: newID()},
		kind:  kind,
		name:  name,
		start: time.Now(),
		attrs: attrs,
	}
}

// StartChild begins a span under parent, in parent's trace. Returns
// nil when the tracer is nil or the parent is not a sampled context,
// so propagation (not per-op sampling) decides what gets traced.
func (t *Tracer) StartChild(parent SpanContext, kind, name string, attrs ...any) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	return &Span{
		t:      t,
		sc:     SpanContext{Trace: parent.Trace, Span: newID()},
		parent: parent.Span,
		kind:   kind,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
}

// StartSpan begins a child of the span context carried by ctx and
// returns the derived context carrying the new span. When ctx carries
// no sampled context the span is nil and ctx is returned unchanged.
func (t *Tracer) StartSpan(ctx context.Context, kind, name string, attrs ...any) (*Span, context.Context) {
	sp := t.StartChild(FromContext(ctx), kind, name, attrs...)
	if sp == nil {
		return nil, ctx
	}
	return sp, ContextWith(ctx, sp.sc)
}

// Context returns the span's identity for propagation (zero when nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Rebase re-parents the span onto a different span context, moving it
// into that context's trace. PLinda workers use it to join a
// transaction span to the trace of the task tuple it took, so a
// master's trace follows the task across processes. The span keeps its
// own span ID; only trace and parent change. No-op on nil or when the
// new parent is invalid.
func (s *Span) Rebase(parent SpanContext) {
	if s == nil || !parent.Valid() {
		return
	}
	s.sc.Trace = parent.Trace
	s.parent = parent.Span
}

// SetName replaces the span's name (decided at end for spans whose
// outcome names them, e.g. commit vs abort). No-op on nil.
func (s *Span) SetName(name string) {
	if s != nil {
		s.name = name
	}
}

// Annotate appends one attribute key/value pair. No-op on nil.
func (s *Span) Annotate(key string, value any) {
	if s != nil {
		s.attrs = append(s.attrs, key, value)
	}
}

// End closes the span, emits it as an Event into the tracer's ring,
// and writes a slow-op log line if the span's duration is at or above
// the tracer's configured threshold. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	e := Event{
		Time:   s.start,
		Kind:   s.kind,
		Name:   s.name,
		Dur:    dur,
		Trace:  s.sc.Trace,
		Span:   s.sc.Span,
		Parent: s.parent,
	}
	if len(s.attrs) >= 2 {
		e.Attrs = make(map[string]any, len(s.attrs)/2)
		for i := 0; i+1 < len(s.attrs); i += 2 {
			k, ok := s.attrs[i].(string)
			if !ok {
				continue
			}
			e.Attrs[k] = s.attrs[i+1]
		}
	}
	s.t.Emit(e)
	if slow := s.t.slowNanos.Load(); slow > 0 && int64(dur) >= slow {
		s.t.slowLogger().Warn("slow op",
			"kind", s.kind, "name", s.name, "dur_ms", dur.Milliseconds(),
			"trace", s.sc.Trace.String(), "span", s.sc.Span.String())
	}
}

// SetSampleRate sets the fraction of new traces that are sampled
// (clamped to [0,1]; the default is 1). Child spans follow their
// parent's decision, so the rate only gates roots.
func (t *Tracer) SetSampleRate(rate float64) {
	if t == nil {
		return
	}
	t.sampleBits.Store(math.Float64bits(math.Min(1, math.Max(0, rate))))
}

func (t *Tracer) sampled() bool {
	rate := math.Float64frombits(t.sampleBits.Load())
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	return rand.Float64() < rate
}

// SetSlowOp configures the slow-op log: every span whose duration
// reaches threshold is written to l (or the package default logger
// when l is nil) at Warn level. A zero threshold disables it.
func (t *Tracer) SetSlowOp(threshold time.Duration, l *Logger) {
	if t == nil {
		return
	}
	t.slowNanos.Store(int64(threshold))
	t.slowLog.Store(l)
}

func (t *Tracer) slowLogger() *Logger {
	if l := t.slowLog.Load(); l != nil {
		return l
	}
	return Default()
}
