// Package obs is the stdlib-only observability layer of the Free
// Parallel Data Mining runtime. The dissertation argues its strategy
// choices (optimistic vs. load-balanced vs. adaptive-master, chapter 4)
// from measured task-cost distributions, idle/busy timelines, and
// tuple-space communication counts; this package provides the
// measurement substrate for the reproduction:
//
//   - Registry: named atomic Counters and Gauges plus fixed-bucket
//     latency Histograms. The hot path is lock-free (one atomic add),
//     and every instrument is nil-receiver safe, so an unobserved
//     component pays a single nil-check branch per operation.
//   - Tracer (trace.go): a bounded ring buffer of structured events
//     covering tuple-op, transaction, and process lifecycle.
//   - ServeDebug (debug.go): a live HTTP endpoint exposing
//     /debug/metrics, /debug/trace, and net/http/pprof.
//
// Components opt in via their Observe methods (tuplespace.Space,
// plinda.Server), struct fields (now.Cluster), or core.SetObserver.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil *Counter is a valid no-op receiver, which is how
// unobserved components keep instrumentation at one branch per op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (e.g. stored tuples, live
// processes). Nil-receiver safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default histogram upper bounds: exponential-ish
// from 1µs to 30s, sized for tuple-op and transaction latencies.
var DefBuckets = []time.Duration{
	1 * time.Microsecond,
	5 * time.Microsecond,
	25 * time.Microsecond,
	100 * time.Microsecond,
	500 * time.Microsecond,
	2500 * time.Microsecond,
	10 * time.Millisecond,
	50 * time.Millisecond,
	250 * time.Millisecond,
	1 * time.Second,
	5 * time.Second,
	30 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Observations are
// lock-free: one atomic add per bucket plus count/sum/max updates.
// Bucket i counts observations d with d <= bounds[i] (and greater than
// the previous bound); the final implicit bucket counts overflows.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]time.Duration(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration. No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	// Linear scan: bucket counts are small (≤ ~16) and the slice is
	// sorted, so this beats sort.Search's function-call overhead.
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Bucket is one histogram bucket in a snapshot. UpperNanos < 0 marks
// the overflow (+Inf) bucket.
type Bucket struct {
	UpperNanos int64 `json:"le_ns"`
	Count      int64 `json:"count"`
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// reporting (individual fields are read atomically). P50/P95/P99 are
// approximate quantiles interpolated from the buckets at snapshot
// time; see Quantile for the estimation rules.
type HistogramSnapshot struct {
	Count    int64    `json:"count"`
	SumNanos int64    `json:"sum_ns"`
	MaxNanos int64    `json:"max_ns"`
	P50Nanos int64    `json:"p50_ns"`
	P95Nanos int64    `json:"p95_ns"`
	P99Nanos int64    `json:"p99_ns"`
	Buckets  []Bucket `json:"buckets,omitempty"`
}

// MeanNanos returns the average observation in nanoseconds.
func (s HistogramSnapshot) MeanNanos() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNanos / s.Count
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds by
// linear interpolation inside the bucket containing the target rank,
// the same scheme Prometheus's histogram_quantile uses. Ranks landing
// in the overflow (+Inf) bucket return MaxNanos — the least-wrong
// finite answer a bounded histogram can give. Returns 0 for an empty
// histogram or q out of range.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || q <= 0 || q > 1 {
		return 0
	}
	target := q * float64(s.Count)
	var cum int64
	var lower int64
	for _, b := range s.Buckets {
		if b.UpperNanos < 0 {
			return s.MaxNanos
		}
		prev := cum
		cum += b.Count
		if float64(cum) >= target {
			frac := (target - float64(prev)) / float64(b.Count)
			return lower + int64(frac*float64(b.UpperNanos-lower))
		}
		lower = b.UpperNanos
	}
	return s.MaxNanos
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.count.Load(),
		SumNanos: h.sum.Load(),
		MaxNanos: h.max.Load(),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		upper := int64(-1)
		if i < len(h.bounds) {
			upper = int64(h.bounds[i])
		}
		s.Buckets = append(s.Buckets, Bucket{UpperNanos: upper, Count: n})
	}
	s.P50Nanos = s.Quantile(0.50)
	s.P95Nanos = s.Quantile(0.95)
	s.P99Nanos = s.Quantile(0.99)
	return s
}

// Registry is a namespace of metrics. Instruments are created on first
// use and shared by name thereafter; lookup takes a mutex, so callers
// on hot paths should look their instruments up once and hold the
// pointers. All methods are safe on a nil *Registry and return nil
// instruments, whose methods are in turn no-ops — attaching no
// registry costs one branch per recorded value.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (DefBuckets when none are given) if needed.
// Bounds are fixed at creation; later calls ignore them.
func (r *Registry) Histogram(name string, bounds ...time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// shaped for JSON reporting.
type Snapshot struct {
	Time       time.Time                    `json:"time"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every instrument. Values are
// read atomically per instrument; the set of instruments is consistent.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Time:       time.Now(),
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.snapshot()
	}
	return s
}
