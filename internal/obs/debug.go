package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// NewDebugMux returns an http mux serving the live debug surface:
//
//	/debug/metrics   JSON Snapshot of the registry
//	/debug/trace     recent tracer events (?n=K limits to the last K)
//	/metrics         Prometheus text exposition of the same registry
//	/debug/pprof/*   the standard net/http/pprof handlers
//
// Either argument may be nil, in which case the corresponding endpoint
// serves an empty document.
func NewDebugMux(r *Registry, t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r.Snapshot(), t) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		events := t.Events()
		if s := req.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		writeJSON(w, struct {
			Total   uint64  `json:"total"`
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{t.Total(), t.Dropped(), events})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

// DebugServer is a running debug HTTP server.
type DebugServer struct {
	srv *http.Server
	l   net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.l.Addr().String() }

// Close shuts the server down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// ServeDebug binds addr (e.g. "localhost:6060" or ":0") and serves the
// debug mux on it in a background goroutine until Close.
func ServeDebug(addr string, r *Registry, t *Tracer) (*DebugServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(r, t), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(l) //nolint:errcheck // ErrServerClosed on Close
	return &DebugServer{srv: srv, l: l}, nil
}
