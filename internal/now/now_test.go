package now

import (
	"math"
	"testing"
	"testing/quick"

	"freepdm/internal/obs"
)

func tasks(costs ...float64) []*Task {
	ts := make([]*Task, len(costs))
	for i, c := range costs {
		ts[i] = &Task{Cost: c}
	}
	return ts
}

func TestSingleMachineIsSumPlusOverhead(t *testing.T) {
	c := &Cluster{Machines: Uniform(1), Overhead: 0.5}
	res := c.Run(tasks(1, 2, 3))
	if want := 1 + 2 + 3 + 3*0.5; math.Abs(res.Makespan-want) > 1e-9 {
		t.Fatalf("makespan=%v want %v", res.Makespan, want)
	}
	if res.Tasks != 3 {
		t.Fatalf("tasks=%d", res.Tasks)
	}
}

func TestTwoMachinesHalveIndependentWork(t *testing.T) {
	c := &Cluster{Machines: Uniform(2)}
	res := c.Run(tasks(1, 1, 1, 1))
	if math.Abs(res.Makespan-2) > 1e-9 {
		t.Fatalf("makespan=%v want 2", res.Makespan)
	}
}

func TestStragglerBoundsMakespan(t *testing.T) {
	c := &Cluster{Machines: Uniform(4)}
	res := c.Run(tasks(10, 1, 1, 1))
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Fatalf("makespan=%v want 10 (straggler)", res.Makespan)
	}
}

func TestHeterogeneousSpeeds(t *testing.T) {
	c := &Cluster{Machines: []Machine{{Speed: 2.0}}}
	res := c.Run(tasks(4))
	if math.Abs(res.Makespan-2) > 1e-9 {
		t.Fatalf("makespan=%v want 2 on a 2x machine", res.Makespan)
	}
}

func TestMasterPhasesAddSequentialTime(t *testing.T) {
	c := &Cluster{Machines: Uniform(2), MasterPre: 3, MasterPost: 2}
	res := c.Run(tasks(1, 1))
	if math.Abs(res.Makespan-(3+1+2)) > 1e-9 {
		t.Fatalf("makespan=%v want 6", res.Makespan)
	}
}

func TestSpawnedTasksRun(t *testing.T) {
	leaf := func() []*Task { return tasks(1, 1) }
	root := &Task{Cost: 1, Spawn: leaf}
	c := &Cluster{Machines: Uniform(2)}
	res := c.Run([]*Task{root})
	if res.Tasks != 3 {
		t.Fatalf("tasks=%d want 3", res.Tasks)
	}
	// root at [0,1] on m0, then two leaves in parallel [1,2].
	if math.Abs(res.Makespan-2) > 1e-9 {
		t.Fatalf("makespan=%v want 2", res.Makespan)
	}
}

func TestFailureRequeuesTask(t *testing.T) {
	// One machine fails at t=1 while running a 3-second task and comes
	// back at t=2: the task restarts, finishing at 2+3=5.
	c := &Cluster{Machines: []Machine{{Speed: 1, FailAt: 1, BackAt: 2}}}
	res := c.Run(tasks(3))
	if res.Retries != 1 {
		t.Fatalf("retries=%d want 1", res.Retries)
	}
	if math.Abs(res.Makespan-5) > 1e-9 {
		t.Fatalf("makespan=%v want 5", res.Makespan)
	}
	if res.Tasks != 1 {
		t.Fatalf("tasks=%d want 1 (no double-count)", res.Tasks)
	}
}

func TestFailedMachineWorkMovesElsewhere(t *testing.T) {
	// Machine 0 dies for good at t=1; machine 1 picks up the re-queued
	// task after finishing its own.
	c := &Cluster{Machines: []Machine{{Speed: 1, FailAt: 1, BackAt: 0}, {Speed: 1}}}
	res := c.Run(tasks(3, 2))
	// m0 runs 3s-task, killed at 1; m1 runs 2s task [0,2], then redoes
	// the 3s task [2,5].
	if math.Abs(res.Makespan-5) > 1e-9 {
		t.Fatalf("makespan=%v want 5", res.Makespan)
	}
	if res.Tasks != 2 || res.Retries != 1 {
		t.Fatalf("tasks=%d retries=%d", res.Tasks, res.Retries)
	}
}

func TestLateJoinDelaysStart(t *testing.T) {
	c := &Cluster{Machines: []Machine{{Speed: 1, JoinAt: 4}}}
	res := c.Run(tasks(1))
	if math.Abs(res.Makespan-5) > 1e-9 {
		t.Fatalf("makespan=%v want 5", res.Makespan)
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() Result {
		spawner := &Task{Cost: 2, Spawn: func() []*Task { return tasks(1, 2, 3, 4) }}
		c := &Cluster{Machines: Heterogeneous(3, 1.0, 0.8, 1.2), Overhead: 0.1}
		return c.Run(append(tasks(5, 1), spawner))
	}
	a, b := mk(), mk()
	if a.Makespan != b.Makespan || a.Tasks != b.Tasks {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestEfficiencyHelpers(t *testing.T) {
	if s := Speedup(100, 25); s != 4 {
		t.Fatalf("speedup=%v", s)
	}
	if e := Efficiency(100, 25, 5); e != 0.8 {
		t.Fatalf("efficiency=%v", e)
	}
}

func TestUniformAndHeterogeneousConstructors(t *testing.T) {
	u := Uniform(3)
	if len(u) != 3 || u[2].Speed != 1.0 {
		t.Fatalf("uniform %v", u)
	}
	h := Heterogeneous(4, 1.0, 2.0)
	if h[0].Speed != 1.0 || h[1].Speed != 2.0 || h[2].Speed != 1.0 {
		t.Fatalf("heterogeneous %v", h)
	}
	if d := Heterogeneous(2); d[0].Speed != 1.0 {
		t.Fatalf("default speed %v", d)
	}
}

// Property: makespan is at least the critical lower bounds — max task
// cost and total work divided by total speed — and at most the
// sequential time plus overheads (for non-failing uniform clusters).
func TestPropertyMakespanBounds(t *testing.T) {
	f := func(raw []uint8, nm uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		n := int(nm%8) + 1
		costs := make([]float64, len(raw))
		var total, maxc float64
		for i, r := range raw {
			costs[i] = float64(r%50) + 1
			total += costs[i]
			if costs[i] > maxc {
				maxc = costs[i]
			}
		}
		c := &Cluster{Machines: Uniform(n)}
		res := c.Run(tasks(costs...))
		lower := math.Max(maxc, total/float64(n))
		return res.Makespan >= lower-1e-9 && res.Makespan <= total+1e-9 && res.Tasks == len(costs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding machines never increases makespan for independent
// tasks dispatched FIFO (list scheduling on identical machines is
// monotone when tasks are independent and queue order is fixed).
func TestPropertyMoreMachinesNoWorse(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 30 {
			return true
		}
		costs := make([]float64, len(raw))
		for i, r := range raw {
			costs[i] = float64(r%20) + 1
		}
		prev := math.Inf(1)
		ok := true
		for n := 1; n <= 4; n *= 2 {
			c := &Cluster{Machines: Uniform(n)}
			res := c.Run(tasks(costs...))
			if res.Makespan > prev+1e-9 {
				ok = false
			}
			prev = res.Makespan
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialTime(t *testing.T) {
	if s := SequentialTime([]float64{3, 1, 2}); s != 6 {
		t.Fatalf("seq=%v", s)
	}
}

func TestRoundMS(t *testing.T) {
	if RoundMS(1.23456) != 1.235 {
		t.Fatalf("RoundMS: %v", RoundMS(1.23456))
	}
}

func BenchmarkSimulate1000Tasks(b *testing.B) {
	costs := make([]float64, 1000)
	for i := range costs {
		costs[i] = float64(i%37) + 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := &Cluster{Machines: Uniform(16), Overhead: 0.05}
		c.Run(tasks(costs...))
	}
}

func TestObservedRunRecordsMetricsAndTrace(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	c := &Cluster{
		Machines: []Machine{{Speed: 1, FailAt: 1.5, BackAt: 2.5}, {Speed: 1}},
		Registry: reg,
		Tracer:   tr,
	}
	res := c.Run(tasks(1, 1, 1, 1))
	snap := reg.Snapshot()
	if got := snap.Counters["now.tasks"]; got != int64(res.Tasks) {
		t.Fatalf("now.tasks=%d want %d", got, res.Tasks)
	}
	if got := snap.Counters["now.retries"]; got != int64(res.Retries) {
		t.Fatalf("now.retries=%d want %d", got, res.Retries)
	}
	if res.Retries == 0 {
		t.Fatalf("expected the FailAt machine to lose a task")
	}
	// After the run every machine is idle and the failed machine is back.
	if got := snap.Gauges["now.busy_machines"]; got != 0 {
		t.Fatalf("busy_machines=%d want 0", got)
	}
	if got := snap.Gauges["now.up_machines"]; got != 2 {
		t.Fatalf("up_machines=%d want 2", got)
	}
	h := snap.Histograms["now.task"]
	if h.Count != int64(res.Tasks) {
		t.Fatalf("now.task count=%d want %d", h.Count, res.Tasks)
	}
	var busy, idle, down int
	for _, e := range tr.Events() {
		if e.Kind != "now" {
			t.Fatalf("unexpected event kind %q", e.Kind)
		}
		switch e.Name {
		case "busy":
			busy++
		case "idle":
			idle++
		case "down":
			down++
		}
	}
	// Every completion had a dispatch; the lost execution was dispatched
	// but never completed.
	if busy != res.Tasks+res.Retries {
		t.Fatalf("busy events=%d want %d", busy, res.Tasks+res.Retries)
	}
	if idle != res.Tasks {
		t.Fatalf("idle events=%d want %d", idle, res.Tasks)
	}
	if down != 1 {
		t.Fatalf("down events=%d want 1", down)
	}
}

func TestUnobservedRunStillWorks(t *testing.T) {
	c := &Cluster{Machines: Uniform(2)}
	if res := c.Run(tasks(1, 1)); res.Tasks != 2 {
		t.Fatalf("tasks=%d", res.Tasks)
	}
}
