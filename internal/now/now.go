// Package now is a discrete-event simulator of a network of
// workstations (NOW), the computing platform of "Free Parallel Data
// Mining". The dissertation's timing experiments ran on LANs of up to
// ~50 Sun Sparc workstations; this simulator reproduces their shape
// (speedup, efficiency, crossovers) deterministically on a single host
// by replaying real task graphs — extracted from the actual mining
// algorithms in this repository — against a model of machines with
// heterogeneous speeds, late joins, owner reclaims, and crashes.
//
// The model is a dynamic master/worker pool: tasks carry a cost in
// seconds on a reference (speed 1.0) machine; completing a task may
// spawn more tasks (the load-balanced E-tree strategy); every task
// dispatch pays a tuple-space communication overhead. Machines take
// the oldest ready task when idle. A machine that fails (or whose
// owner returns) loses its current task, which is re-queued and
// re-executed from scratch — the PLinda transactional recovery cost.
package now

import (
	"container/heap"
	"math"
	"sort"
	"time"

	"freepdm/internal/obs"
)

// Machine models one workstation.
type Machine struct {
	Speed   float64 // relative to the reference machine; 1.0 = Sparc 5
	JoinAt  float64 // seconds after start when the machine becomes idle/available
	FailAt  float64 // wall time of a failure / owner return; 0 = never
	BackAt  float64 // wall time the machine becomes available again after FailAt
	Refails bool    // if true, the machine fails every (BackAt-FailAt+FailAt) cycle (unused by default)
}

// Uniform returns n identical reference machines.
func Uniform(n int) []Machine {
	m := make([]Machine, n)
	for i := range m {
		m[i] = Machine{Speed: 1.0}
	}
	return m
}

// Heterogeneous returns n machines whose speeds cycle through the given
// factors, modeling the non-identical Sparcs of the large-network
// experiment (figure 4.14).
func Heterogeneous(n int, speeds ...float64) []Machine {
	if len(speeds) == 0 {
		speeds = []float64{1.0}
	}
	m := make([]Machine, n)
	for i := range m {
		m[i] = Machine{Speed: speeds[i%len(speeds)]}
	}
	return m
}

// Task is one unit of work in a simulated run.
type Task struct {
	Name  string
	Cost  float64        // seconds on a speed-1.0 machine
	Spawn func() []*Task // children released when this task commits; may be nil
}

// Cluster is a simulated NOW plus its coordination cost model.
type Cluster struct {
	Machines []Machine
	// Overhead is the per-task tuple-space coordination cost (take a
	// work tuple, commit a result tuple), in reference seconds.
	Overhead float64
	// MasterPre and MasterPost are sequential master phases before any
	// task is available and after the last result is collected.
	MasterPre, MasterPost float64

	// Registry and Tracer optionally observe the simulated run (either
	// may be nil). Counters/histograms use the "now." prefix; trace
	// events use kind "now" and cover machine up/down and worker
	// busy/idle transitions — the idle/busy timelines chapter 4 argues
	// its strategy choices from. Durations and the "t" attribute are in
	// simulated (virtual) time, scaled as 1 simulated second = 1s Dur.
	Registry *obs.Registry
	Tracer   *obs.Tracer
}

// simSeconds renders virtual seconds as a time.Duration for Event.Dur
// and histogram observations.
func simSeconds(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// Result summarizes a simulated run.
type Result struct {
	Makespan float64   // total wall time including master phases
	Tasks    int       // tasks executed to completion
	Retries  int       // task executions lost to failures and redone
	Busy     []float64 // per-machine busy seconds
}

// Speedup returns seq/par; Efficiency returns speedup/machines as a
// fraction in [0,1] (can exceed 1 for super-linear cases).
func Speedup(seq, par float64) float64 { return seq / par }

// Efficiency is speedup divided by the machine count.
func Efficiency(seq, par float64, machines int) float64 {
	return Speedup(seq, par) / float64(machines)
}

// event kinds
type evKind int

const (
	evTaskDone evKind = iota
	evMachineUp
	evMachineDown
)

type event struct {
	at    float64
	seq   int
	kind  evKind
	m     int   // machine index
	task  *Task // for evTaskDone
	epoch int   // dispatch epoch; a completion is stale if it mismatches
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Run simulates executing the initial tasks (and everything they
// spawn) on the cluster and returns the timing summary. It is
// deterministic: ties break by event insertion order and ready tasks
// are dispatched FIFO to the lowest-numbered idle machine.
func (c *Cluster) Run(initial []*Task) Result {
	type machState struct {
		up      bool
		busy    bool
		cur     *Task
		started float64
		epoch   int
	}
	n := len(c.Machines)
	ms := make([]machState, n)
	var q eventQueue
	seq := 0
	push := func(at float64, kind evKind, m int, t *Task, epoch int) {
		heap.Push(&q, &event{at: at, seq: seq, kind: kind, m: m, task: t, epoch: epoch})
		seq++
	}
	start := c.MasterPre
	for i, m := range c.Machines {
		push(start+m.JoinAt, evMachineUp, i, nil, 0)
		if m.FailAt > 0 {
			push(start+m.FailAt, evMachineDown, i, nil, 0)
			if m.BackAt > m.FailAt {
				push(start+m.BackAt, evMachineUp, i, nil, 0)
			}
		}
	}

	ready := append([]*Task(nil), initial...)
	res := Result{Busy: make([]float64, n)}
	nowT := start

	var (
		mTasks   = c.Registry.Counter("now.tasks")
		mRetries = c.Registry.Counter("now.retries")
		mBusy    = c.Registry.Gauge("now.busy_machines")
		mUp      = c.Registry.Gauge("now.up_machines")
		mTaskDur = c.Registry.Histogram("now.task")
	)
	// Gauges describe the run in progress; restart them per Run.
	mBusy.Set(0)
	mUp.Set(0)

	dispatch := func() {
		for len(ready) > 0 {
			mi := -1
			for i := range ms {
				if ms[i].up && !ms[i].busy {
					mi = i
					break
				}
			}
			if mi < 0 {
				return
			}
			t := ready[0]
			ready = ready[1:]
			ms[mi].busy = true
			ms[mi].cur = t
			ms[mi].started = nowT
			ms[mi].epoch++
			dur := (c.Overhead + t.Cost) / c.Machines[mi].Speed
			mBusy.Add(1)
			if c.Tracer != nil {
				c.Tracer.Record("now", "busy", 0, "machine", mi, "task", t.Name, "t", nowT)
			}
			push(nowT+dur, evTaskDone, mi, t, ms[mi].epoch)
		}
	}

	outstanding := len(ready)
	for q.Len() > 0 {
		e := heap.Pop(&q).(*event)
		nowT = e.at
		switch e.kind {
		case evMachineUp:
			ms[e.m].up = true
			mUp.Add(1)
			if c.Tracer != nil {
				c.Tracer.Record("now", "up", 0, "machine", e.m, "t", nowT)
			}
		case evMachineDown:
			ms[e.m].up = false
			mUp.Add(-1)
			if c.Tracer != nil {
				c.Tracer.Record("now", "down", 0, "machine", e.m, "t", nowT)
			}
			if ms[e.m].busy {
				// The task is lost with the incarnation and re-queued;
				// PLinda's abort makes the partial execution vanish.
				res.Retries++
				mRetries.Inc()
				ready = append(ready, ms[e.m].cur)
				ms[e.m].busy = false
				ms[e.m].cur = nil
				mBusy.Add(-1)
			}
		case evTaskDone:
			if !ms[e.m].up || ms[e.m].cur != e.task || ms[e.m].epoch != e.epoch {
				// Stale completion of a task whose machine went down.
				continue
			}
			ms[e.m].busy = false
			ms[e.m].cur = nil
			res.Busy[e.m] += nowT - ms[e.m].started
			res.Tasks++
			mTasks.Inc()
			mBusy.Add(-1)
			mTaskDur.Observe(simSeconds(nowT - ms[e.m].started))
			if c.Tracer != nil {
				c.Tracer.Record("now", "idle", simSeconds(nowT-ms[e.m].started), "machine", e.m, "task", e.task.Name, "t", nowT)
			}
			outstanding--
			if e.task.Spawn != nil {
				children := e.task.Spawn()
				ready = append(ready, children...)
				outstanding += len(children)
			}
		}
		dispatch()
		if outstanding == 0 && len(ready) == 0 {
			break
		}
	}
	res.Makespan = nowT + c.MasterPost
	return res
}

// SequentialTime is the reference single-machine time for a task
// multiset: the sum of costs (no coordination overhead, matching the
// dissertation's sequential programs which pay no tuple-space cost).
func SequentialTime(costs []float64) float64 {
	// Kahan-free simple sum is fine at these magnitudes, but sort for
	// determinism across callers that pass map-ordered data.
	s := append([]float64(nil), costs...)
	sort.Float64s(s)
	total := 0.0
	for _, c := range s {
		total += c
	}
	return total
}

// RoundMS rounds a duration in seconds to whole milliseconds for
// stable experiment output.
func RoundMS(sec float64) float64 { return math.Round(sec*1000) / 1000 }
