package seq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGSTSeqCountToyExample(t *testing.T) {
	// The toy database of section 2.3.1.
	seqs := []string{"FFRR", "MRRM", "MTRM", "DPKY", "AVLG"}
	g := BuildGST(seqs)
	cases := []struct {
		seg  string
		want int
	}{
		{"RR", 2}, {"RM", 2}, {"FFRR", 1}, {"M", 2}, {"Z", 0}, {"", 5}, {"RRM", 1},
	}
	for _, c := range cases {
		if got := g.SeqCount(c.seg); got != c.want {
			t.Errorf("SeqCount(%q)=%d want %d", c.seg, got, c.want)
		}
	}
}

func TestGSTMatchesNaiveCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seqs := RandomSequences(12, 60, rng)
	g := BuildGST(seqs)
	for i := 0; i < 200; i++ {
		s := seqs[rng.Intn(len(seqs))]
		a := rng.Intn(len(s))
		b := a + 1 + rng.Intn(8)
		if b > len(s) {
			b = len(s)
		}
		seg := s[a:b]
		if got, want := g.SeqCount(seg), NaiveSeqCount(seqs, seg); got != want {
			t.Fatalf("SeqCount(%q)=%d want %d", seg, got, want)
		}
	}
}

// Property: for random segment queries (present or not), GST count
// equals the naive count.
func TestPropertyGSTCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seqs := RandomSequences(8, 40, rng)
	g := BuildGST(seqs)
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 6 {
			return true
		}
		var b strings.Builder
		for _, r := range raw {
			b.WriteByte(Alphabet[int(r)%len(Alphabet)])
		}
		seg := b.String()
		return g.SeqCount(seg) == NaiveSeqCount(seqs, seg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGSTExtensions(t *testing.T) {
	seqs := []string{"FFRR", "MRRM", "MTRM"}
	g := BuildGST(seqs)
	// Extensions of "R": RR (FFRR, MRRM) and RM (MRRM, MTRM).
	exts := g.Extensions("R", 1)
	if string(exts) != "MR" {
		t.Fatalf("Extensions(R)=%q want \"MR\"", exts)
	}
	// With minSeqs 2 both survive; with 3 neither.
	if got := g.Extensions("R", 2); string(got) != "MR" {
		t.Fatalf("Extensions(R,2)=%q", got)
	}
	if got := g.Extensions("R", 3); len(got) != 0 {
		t.Fatalf("Extensions(R,3)=%q", got)
	}
	// Top-level extensions are the distinct first letters.
	top := g.Extensions("", 1)
	if string(top) != "FMRT" {
		t.Fatalf("Extensions('')=%q", top)
	}
}

func TestGSTSegments(t *testing.T) {
	seqs := []string{"ABCDE", "XBCDY", "BCDZZ"}
	g := BuildGST(seqs)
	segs := g.Segments(3, 3)
	if len(segs) != 1 || segs[0] != "BCD" {
		t.Fatalf("Segments(3,3)=%v", segs)
	}
	if segs := g.Segments(2, 3); len(segs) != 2 { // BC, CD
		t.Fatalf("Segments(2,3)=%v", segs)
	}
}

func TestMotifParseAndString(t *testing.T) {
	m := ParseMotif("*RR*")
	if len(m.Segments) != 1 || m.Segments[0] != "RR" || m.Len() != 2 {
		t.Fatalf("%+v", m)
	}
	if m.String() != "*RR*" {
		t.Fatalf("String %q", m.String())
	}
	two := ParseMotif("*AB*CD*")
	if len(two.Segments) != 2 || two.Len() != 4 {
		t.Fatalf("%+v", two)
	}
}

func TestMatchesWithinExact(t *testing.T) {
	m := ParseMotif("*RR*")
	if !m.MatchesWithin("FFRR", 0) || !m.MatchesWithin("MRRM", 0) {
		t.Fatal("exact match failed")
	}
	if m.MatchesWithin("MTRM", 0) {
		t.Fatal("false positive")
	}
	if got := m.OccurrenceNo([]string{"FFRR", "MRRM", "MTRM", "DPKY", "AVLG"}, 0); got != 2 {
		t.Fatalf("occurrence %d want 2 (section 2.3.1)", got)
	}
}

func TestMatchesWithinMutations(t *testing.T) {
	m := ParseMotif("*ACDEF*")
	if !m.MatchesWithin("xxACDEFyy", 0) {
		t.Fatal("exact substring")
	}
	if !m.MatchesWithin("xxACGEFyy", 1) { // mismatch
		t.Fatal("one mismatch within 1")
	}
	if m.MatchesWithin("xxACGEFyy", 0) {
		t.Fatal("mismatch without budget")
	}
	if !m.MatchesWithin("xxACDEyy", 1) { // deletion of F
		t.Fatal("one deletion within 1")
	}
	if !m.MatchesWithin("xxACWDEFyy", 1) { // insertion
		t.Fatal("one insertion within 1")
	}
	if m.MatchesWithin("xxAWWEFyy", 1) {
		t.Fatal("two mismatches within 1")
	}
}

func TestMultiSegmentOrdering(t *testing.T) {
	m := ParseMotif("*AB*CD*")
	if !m.MatchesWithin("xxAByyCDzz", 0) {
		t.Fatal("ordered segments should match")
	}
	if m.MatchesWithin("xxCDyyABzz", 0) {
		t.Fatal("segments out of order must not match exactly")
	}
	// Adjacent segments (empty VLDC) are allowed.
	if !m.MatchesWithin("ABCD", 0) {
		t.Fatal("adjacent segments")
	}
}

// Property: single-segment semi-global matching is consistent with
// edit distance: if some substring has edit distance <= mut the motif
// matches, and conversely.
func TestPropertySemiGlobalVsEditDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(segRaw, sRaw []uint8, mutRaw uint8) bool {
		if len(segRaw) == 0 || len(segRaw) > 5 || len(sRaw) == 0 || len(sRaw) > 12 {
			return true
		}
		mut := int(mutRaw % 3)
		mk := func(raw []uint8) string {
			var b strings.Builder
			for _, r := range raw {
				b.WriteByte(Alphabet[int(r)%4]) // small alphabet: collisions likely
			}
			return b.String()
		}
		seg, s := mk(segRaw), mk(sRaw)
		m := Motif{Segments: []string{seg}}
		want := false
		for i := 0; i <= len(s) && !want; i++ {
			for j := i; j <= len(s); j++ {
				if EditDistance(seg, s[i:j]) <= mut {
					want = true
					break
				}
			}
		}
		return m.MatchesWithin(s, mut) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: the subpattern antimonotonicity of section 2.3.4 — a
// right-extension of a motif never occurs in more sequences.
func TestPropertyExtensionAntimonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seqs := RandomSequences(10, 50, rng)
	f := func(raw []uint8, mutRaw uint8) bool {
		if len(raw) < 2 || len(raw) > 6 {
			return true
		}
		var b strings.Builder
		for _, r := range raw {
			b.WriteByte(Alphabet[int(r)%6])
		}
		seg := b.String()
		mut := int(mutRaw % 3)
		short := Motif{Segments: []string{seg[:len(seg)-1]}}
		long := Motif{Segments: []string{seg}}
		return long.OccurrenceNo(seqs, mut) <= short.OccurrenceNo(seqs, mut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclinsCorpusShape(t *testing.T) {
	spec := CyclinsSpec(42)
	seqs := spec.Generate()
	if len(seqs) != 47 {
		t.Fatalf("%d sequences", len(seqs))
	}
	avg := AverageLength(seqs)
	if avg < 360 || avg > 440 {
		t.Fatalf("average length %.0f, want ~400", avg)
	}
	// The exactly conserved planted motifs must be recoverable.
	g := BuildGST(seqs)
	for _, m := range spec.Motifs {
		if m.MutRate == 0 && len(m.VarPositions) == 0 {
			if got := g.SeqCount(m.Pattern); got < m.Carriers {
				t.Errorf("planted motif %q found in %d sequences, want >= %d",
					m.Pattern, got, m.Carriers)
			}
		}
	}
	// The position-degenerate motifs should be found by mutation-
	// tolerant search: each copy differs at the variable positions, so
	// allow one mutation per variable column.
	deg := spec.Motifs[3]
	m := Motif{Segments: []string{deg.Pattern}}
	if occ := m.OccurrenceNo(seqs, len(deg.VarPositions)); occ < deg.Carriers*3/4 {
		t.Errorf("degenerate motif occurs in %d sequences, want >= %d", occ, deg.Carriers*3/4)
	}
}

func TestFormatFasta(t *testing.T) {
	out := FormatFasta("cyc", []string{strings.Repeat("A", 70)})
	if !strings.HasPrefix(out, ">cyc_A\n") || !strings.Contains(out, "\nAAAAAAAAAA\n") {
		t.Fatalf("fasta:\n%s", out)
	}
}

func TestEditDistanceBasics(t *testing.T) {
	if EditDistance("kitten", "sitting") != 3 {
		t.Fatal("kitten/sitting")
	}
	if EditDistance("", "abc") != 3 || EditDistance("abc", "") != 3 {
		t.Fatal("empty cases")
	}
	if EditDistance("same", "same") != 0 {
		t.Fatal("identity")
	}
}

func BenchmarkBuildGSTCyclins(b *testing.B) {
	seqs := CyclinsSpec(1).Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGST(seqs)
	}
}

func BenchmarkOccurrenceNoMut4(b *testing.B) {
	seqs := CyclinsSpec(1).Generate()
	m := ParseMotif("*SLEYKLLPETLYLAISY*")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.OccurrenceNo(seqs, 4)
	}
}
