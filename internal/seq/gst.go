// Package seq provides the protein-sequence substrate of chapter 4 of
// "Free Parallel Data Mining": sequences over the 20-letter amino-acid
// alphabet, a generalized suffix tree (GST) for candidate-segment
// enumeration (phase 1 of the Wang et al. discovery algorithm,
// section 2.3.4), approximate motif matching with variable length
// don't cares and mutations (insertions, deletions, mismatches), and a
// synthetic corpus generator standing in for the cyclins.pirx protein
// family used in the experiments.
package seq

import (
	"math/rand"
	"sort"
	"strings"
)

// Alphabet is the 20 amino-acid one-letter codes.
const Alphabet = "ACDEFGHIKLMNPQRSTVWY"

// gstNode is a node of the compressed generalized suffix tree. Edge
// labels are substrings of the source sequences (by reference).
type gstNode struct {
	label    string // label of the edge entering this node
	children map[byte]*gstNode
	seqs     map[int]struct{} // ids of sequences with a suffix through here
}

func newGSTNode(label string) *gstNode {
	return &gstNode{label: label, children: map[byte]*gstNode{}, seqs: map[int]struct{}{}}
}

// GST is a generalized suffix tree over a set of sequences: a trie of
// all suffixes with single-child paths collapsed (section 2.3.4). It
// answers two queries the discovery algorithm needs: the number of
// distinct sequences containing a segment exactly, and the one-letter
// right extensions of a segment that occur in the data.
type GST struct {
	root *gstNode
	n    int // number of sequences
}

// BuildGST constructs the tree by suffix insertion. For the corpus
// sizes of chapter 4 (tens of sequences, hundreds of letters each)
// this is comfortably fast; each suffix insertion walks at most the
// suffix's length.
func BuildGST(seqs []string) *GST {
	t := &GST{root: newGSTNode(""), n: len(seqs)}
	for id, s := range seqs {
		for i := 0; i < len(s); i++ {
			t.insert(s[i:], id)
		}
	}
	return t
}

func (t *GST) insert(suffix string, id int) {
	node := t.root
	node.seqs[id] = struct{}{}
	for len(suffix) > 0 {
		child, ok := node.children[suffix[0]]
		if !ok {
			nn := newGSTNode(suffix)
			nn.seqs[id] = struct{}{}
			node.children[suffix[0]] = nn
			return
		}
		// Longest common prefix of the edge label and the suffix.
		l := 0
		for l < len(child.label) && l < len(suffix) && child.label[l] == suffix[l] {
			l++
		}
		if l < len(child.label) {
			// Split the edge.
			mid := newGSTNode(child.label[:l])
			mid.children[child.label[l]] = child
			for sid := range child.seqs {
				mid.seqs[sid] = struct{}{}
			}
			child.label = child.label[l:]
			node.children[suffix[0]] = mid
			child = mid
		}
		child.seqs[id] = struct{}{}
		node = child
		suffix = suffix[l:]
	}
}

// locate returns the node at or below which the segment ends, plus how
// many characters of that node's edge label are consumed; ok is false
// when the segment does not occur.
func (t *GST) locate(segment string) (node *gstNode, used int, ok bool) {
	node = t.root
	rest := segment
	for len(rest) > 0 {
		child, found := node.children[rest[0]]
		if !found {
			return nil, 0, false
		}
		l := 0
		for l < len(child.label) && l < len(rest) {
			if child.label[l] != rest[l] {
				return nil, 0, false
			}
			l++
		}
		node = child
		used = l
		rest = rest[l:]
		if used < len(node.label) && len(rest) > 0 {
			return nil, 0, false
		}
	}
	return node, used, true
}

// SeqCount returns the number of distinct sequences containing the
// segment exactly (the occurrence number with zero mutations).
func (t *GST) SeqCount(segment string) int {
	if segment == "" {
		return t.n
	}
	node, _, ok := t.locate(segment)
	if !ok {
		return 0
	}
	return len(node.seqs)
}

// Contains reports whether the segment occurs in any sequence.
func (t *GST) Contains(segment string) bool { return t.SeqCount(segment) > 0 }

// Extensions returns, in sorted order, the letters c such that
// segment+c occurs in at least minSeqs sequences. This drives lazy
// E-tree child generation: children of a segment pattern are its
// right extensions present in the (sample of the) database.
func (t *GST) Extensions(segment string, minSeqs int) []byte {
	if minSeqs < 1 {
		minSeqs = 1
	}
	var out []byte
	if segment == "" {
		for c, child := range t.root.children {
			if len(child.seqs) >= minSeqs {
				out = append(out, c)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	node, used, ok := t.locate(segment)
	if !ok {
		return nil
	}
	if used < len(node.label) {
		// Mid-edge: the only extension is the next label character.
		if len(node.seqs) >= minSeqs {
			out = append(out, node.label[used])
		}
		return out
	}
	for c, child := range node.children {
		if len(child.seqs) >= minSeqs {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Segments enumerates all segments of exactly the given length that
// occur in at least minSeqs sequences, in sorted order — subphase B of
// phase 1 of the discovery algorithm.
func (t *GST) Segments(length, minSeqs int) []string {
	var out []string
	var walk func(n *gstNode, prefix string)
	walk = func(n *gstNode, prefix string) {
		if len(n.seqs) < minSeqs && n != t.root {
			return
		}
		full := prefix + n.label
		if len(full) >= length {
			if n == t.root || len(n.seqs) >= minSeqs {
				out = append(out, full[:length])
			}
			return
		}
		for _, c := range sortedKeys(n.children) {
			walk(n.children[c], full)
		}
	}
	walk(t.root, "")
	sort.Strings(out)
	return dedupStrings(out)
}

func sortedKeys(m map[byte]*gstNode) []byte {
	ks := make([]byte, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func dedupStrings(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// NaiveSeqCount is the reference implementation of SeqCount used by
// the property tests: strings.Contains over every sequence.
func NaiveSeqCount(seqs []string, segment string) int {
	c := 0
	for _, s := range seqs {
		if strings.Contains(s, segment) {
			c++
		}
	}
	return c
}

// RandomSequences generates n random sequences of the given length
// over the amino-acid alphabet.
func RandomSequences(n, length int, rng *rand.Rand) []string {
	out := make([]string, n)
	var b strings.Builder
	for i := range out {
		b.Reset()
		for j := 0; j < length; j++ {
			b.WriteByte(Alphabet[rng.Intn(len(Alphabet))])
		}
		out[i] = b.String()
	}
	return out
}
