package seq

import (
	"math/rand"
	"strings"
)

// CorpusSpec parameterizes the synthetic protein family standing in
// for cyclins.pirx (47 sequences, average length ~400). Motifs are
// planted into subsets of the sequences, some copies mutated, so that
// the discovery settings of table 4.2 find comparable numbers of
// active motifs and the resulting E-tree has the same shape (20 top
// level patterns, a few hundred second-level patterns).
type CorpusSpec struct {
	Sequences int // number of sequences (47)
	Length    int // average sequence length (~400)
	// Planted motifs: each is inserted into Carriers sequences; within
	// a carrier each copy mutates with MutRate per letter.
	Motifs []PlantedMotif
	Seed   int64
}

// PlantedMotif describes one conserved region. Conservation can be
// position-structured, as in real protein families: positions listed
// in VarPositions are variable — each copy draws that letter from a
// small per-position alternative set of VarChoices letters — while all
// other positions are copied exactly. MutRate additionally applies
// uniform per-letter noise.
type PlantedMotif struct {
	Pattern      string // the conserved segment
	Carriers     int    // how many sequences carry it
	MutRate      float64
	VarPositions []int // positions randomized per copy
	VarChoices   int   // alternative letters per variable position (default 4)
}

// CyclinsSpec is the default corpus matching the experimental data
// set: strongly conserved long motifs carried by most of the family
// (found by setting 2's mutation-tolerant search) plus a few exactly
// conserved shorter regions (found by setting 1's exact search).
func CyclinsSpec(seed int64) CorpusSpec {
	return CorpusSpec{
		Sequences: 47,
		Length:    400,
		Seed:      seed,
		Motifs: []PlantedMotif{
			// Exactly conserved: found with Mut=0, Occur>=5, Len>=12.
			{Pattern: "MRAILVDWLVEV", Carriers: 7, MutRate: 0},
			{Pattern: "YLDRFLSCMSVL", Carriers: 6, MutRate: 0},
			{Pattern: "KYEEIYPPEVGD", Carriers: 5, MutRate: 0},
			// Widely carried but position-degenerate: variable columns
			// every ~5 positions mean every exact 12-window is shared by
			// too few sequences for setting 1, while the mutation
			// tolerant setting 2 (Mut=4, Occur>=12, Len>=16) finds these
			// regions and their many active submotifs.
			{Pattern: "SLEYKLLPETLYLAISYVDRYPSK", Carriers: 20,
				VarPositions: []int{2, 7, 12, 17, 22}, VarChoices: 4},
			{Pattern: "TDNTYSQQEVVKMEADLLKTLAFE", Carriers: 18,
				VarPositions: []int{3, 8, 13, 18, 23}, VarChoices: 4},
			{Pattern: "KFRLLQETMYMTVSIIDRFMQNNC", Carriers: 16,
				VarPositions: []int{4, 9, 14, 19}, VarChoices: 4},
		},
	}
}

// Generate materializes the corpus.
func (cs CorpusSpec) Generate() []string {
	rng := rand.New(rand.NewSource(cs.Seed))
	seqs := make([][]byte, cs.Sequences)
	for i := range seqs {
		// Lengths vary ±10% around the average.
		l := cs.Length + rng.Intn(cs.Length/5+1) - cs.Length/10
		b := make([]byte, l)
		for j := range b {
			b[j] = Alphabet[rng.Intn(len(Alphabet))]
		}
		seqs[i] = b
	}
	// Track planted intervals so later motifs do not overwrite earlier
	// ones in sequences that carry several.
	occupied := make([][][2]int, cs.Sequences)
	overlaps := func(seq int, lo, hi int) bool {
		for _, iv := range occupied[seq] {
			if lo < iv[1] && iv[0] < hi {
				return true
			}
		}
		return false
	}
	for _, m := range cs.Motifs {
		carriers := rng.Perm(cs.Sequences)[:m.Carriers]
		for _, c := range carriers {
			copySeg := []byte(m.Pattern)
			choices := m.VarChoices
			if choices <= 0 {
				choices = 4
			}
			for _, vp := range m.VarPositions {
				if vp < len(copySeg) {
					base := int(m.Pattern[vp]-'A') % len(Alphabet)
					copySeg[vp] = Alphabet[(base+rng.Intn(choices))%len(Alphabet)]
				}
			}
			for j := range copySeg {
				if m.MutRate > 0 && rng.Float64() < m.MutRate {
					copySeg[j] = Alphabet[rng.Intn(len(Alphabet))]
				}
			}
			s := seqs[c]
			if len(s) <= len(copySeg) {
				continue
			}
			pos := -1
			for try := 0; try < 50; try++ {
				p := rng.Intn(len(s) - len(copySeg))
				if !overlaps(c, p, p+len(copySeg)) {
					pos = p
					break
				}
			}
			if pos < 0 {
				continue
			}
			occupied[c] = append(occupied[c], [2]int{pos, pos + len(copySeg)})
			copy(s[pos:], copySeg)
		}
	}
	out := make([]string, len(seqs))
	for i, b := range seqs {
		out[i] = string(b)
	}
	return out
}

// AverageLength reports the mean sequence length of a corpus.
func AverageLength(seqs []string) float64 {
	if len(seqs) == 0 {
		return 0
	}
	t := 0
	for _, s := range seqs {
		t += len(s)
	}
	return float64(t) / float64(len(seqs))
}

// FormatFasta renders sequences in a simple FASTA-like form for the
// example programs.
func FormatFasta(name string, seqs []string) string {
	var b strings.Builder
	for i, s := range seqs {
		b.WriteString(">")
		b.WriteString(name)
		b.WriteString("_")
		b.WriteByte(byte('A' + i%26))
		b.WriteString("\n")
		for len(s) > 60 {
			b.WriteString(s[:60])
			b.WriteString("\n")
			s = s[60:]
		}
		b.WriteString(s)
		b.WriteString("\n")
	}
	return b.String()
}
