package seq

import "strings"

// Motif is a VLDC pattern *S1*S2*...*Sk*: segments separated by
// variable length don't cares. In matching, each * substitutes for
// zero or more letters; segments may mutate (insert, delete,
// mismatch) within a total budget.
type Motif struct {
	Segments []string
}

// ParseMotif parses the "*SEG*SEG*" notation.
func ParseMotif(s string) Motif {
	var segs []string
	for _, part := range strings.Split(s, "*") {
		if part != "" {
			segs = append(segs, part)
		}
	}
	return Motif{Segments: segs}
}

// String renders the motif in VLDC notation.
func (m Motif) String() string {
	if len(m.Segments) == 0 {
		return "*"
	}
	return "*" + strings.Join(m.Segments, "*") + "*"
}

// Len is |P|: the number of non-VLDC letters.
func (m Motif) Len() int {
	n := 0
	for _, s := range m.Segments {
		n += len(s)
	}
	return n
}

// MatchesWithin reports whether the motif matches the sequence within
// at most mut mutations after an optimal substitution for the VLDCs.
// A mutation is an insertion, a deletion, or a mismatch, all unit
// cost. For each segment the match is semi-global (the flanking VLDCs
// absorb any letters of s), and segments must match in order at
// non-overlapping, left-to-right positions; the mutation budget is
// shared across segments.
func (m Motif) MatchesWithin(s string, mut int) bool {
	if m.Len() == 0 {
		return true
	}
	// state[j] = minimal mutations spent so far for a parse of the
	// segments consumed so far that ends at or before position j of s.
	// Process segments in order; for each, run a semi-global edit DP
	// whose start positions are the allowed continuation points.
	n := len(s)
	const inf = 1 << 30
	// best[j]: minimal cost to have matched the segments so far with
	// the last match ending at position <= j (prefix-min form).
	best := make([]int, n+1)
	for j := range best {
		best[j] = 0 // zero segments matched costs nothing, any start
	}
	cur := make([]int, n+1)
	prev := make([]int, n+1)
	for _, seg := range m.Segments {
		mlen := len(seg)
		// prev/cur rows of the edit DP over the segment (rows) and s
		// (cols). Row 0: starting a match at position j costs best[j]
		// (mutations already spent before this segment).
		for j := 0; j <= n; j++ {
			prev[j] = best[j]
		}
		nextBest := make([]int, n+1)
		for j := range nextBest {
			nextBest[j] = inf
		}
		for i := 1; i <= mlen; i++ {
			cur[0] = prev[0] + 1 // deletion of segment letter
			for j := 1; j <= n; j++ {
				sub := prev[j-1]
				if seg[i-1] != s[j-1] {
					sub++
				}
				del := prev[j] + 1 // delete segment letter
				ins := cur[j-1] + 1
				v := sub
				if del < v {
					v = del
				}
				if ins < v {
					v = ins
				}
				cur[j] = v
			}
			prev, cur = cur, prev
		}
		// prev now holds the final row: cost of matching this segment
		// ending exactly at position j. Convert to prefix-min for the
		// next segment's free start (the * between them).
		run := inf
		for j := 0; j <= n; j++ {
			if prev[j] < run {
				run = prev[j]
			}
			nextBest[j] = run
		}
		best = nextBest
	}
	return best[n] <= mut
}

// OccurrenceNo is occurrence_no^mut_S(P): the number of sequences in
// the set that contain the motif within mut mutations.
func (m Motif) OccurrenceNo(seqs []string, mut int) int {
	c := 0
	for _, s := range seqs {
		if m.MatchesWithin(s, mut) {
			c++
		}
	}
	return c
}

// EditDistance is the unit-cost Levenshtein distance, exposed for the
// property tests of the matcher.
func EditDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			sub := prev[j-1]
			if a[i-1] != b[j-1] {
				sub++
			}
			v := sub
			if prev[j]+1 < v {
				v = prev[j] + 1
			}
			if cur[j-1]+1 < v {
				v = cur[j-1] + 1
			}
			cur[j] = v
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
