// Quickstart: mine frequent itemsets and association rules from a
// synthetic market-basket database three ways — the classic Apriori
// algorithm, the E-dag framework of chapter 3, and a PLinda parallel
// E-tree traversal — and confirm they agree.
package main

import (
	"fmt"
	"log"

	"freepdm/internal/core"
	"freepdm/internal/mining/assoc"
	"freepdm/internal/plinda"
)

func main() {
	// A K-mart-style basket database (section 2.2.1) with planted
	// co-occurring item groups.
	items := []string{"pamper", "soap", "lipstick", "soda", "candy", "beer", "chips", "salsa"}
	db := assoc.GenerateDB(2000, len(items), [][]int{
		{0, 2},    // pampers & lipstick
		{5, 6, 7}, // beer, chips & salsa
	}, 0.35, 1)
	const minSupport = 400

	// 1. Apriori.
	frequent := assoc.Apriori(db, minSupport)
	fmt.Printf("Apriori found %d frequent itemsets (support >= %d):\n", len(frequent), minSupport)
	for _, f := range frequent {
		if len(f.Items) >= 2 {
			fmt.Printf("  %v  support=%d\n", names(f.Items, items), f.Support)
		}
	}

	// 2. The same mining problem as an E-dag application.
	problem := assoc.NewProblem(db, minSupport)
	res, stats := core.SolveSequential(problem)
	fmt.Printf("\nE-dag traversal: %d goodness evaluations, %d good patterns, %d pruned\n",
		stats.Evaluated, stats.Good, stats.Pruned)
	if len(assoc.FrequentSets(res)) != len(frequent) {
		log.Fatal("E-dag result disagrees with Apriori")
	}

	// 3. Parallel, fault-tolerant, on a PLinda server with 4 workers.
	srv := plinda.NewServer()
	defer srv.Close()
	parRes, err := core.RunPLET(srv, problem, 4)
	if err != nil {
		log.Fatal(err)
	}
	if len(assoc.FrequentSets(parRes)) != len(frequent) {
		log.Fatal("PLinda result disagrees with Apriori")
	}
	fmt.Printf("PLinda E-tree traversal with 4 workers agrees (%d commits, %d aborts)\n",
		srv.Commits(), srv.Aborts())

	// Phase II: association rules.
	rules := assoc.Rules(frequent, 0.75)
	fmt.Printf("\nRules with confidence >= 75%%:\n")
	for _, r := range rules {
		fmt.Printf("  %v -> %v  (supp=%d, conf=%.0f%%)\n",
			names(r.Antecedent, items), names(r.Consequent, items), r.Support, 100*r.Confidence)
	}
}

func names(s assoc.Itemset, items []string) []string {
	out := make([]string, len(s))
	for i, it := range s {
		out[i] = items[it]
	}
	return out
}
