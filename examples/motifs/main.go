// Motifs: discover active motifs in a cyclins-like protein family
// (chapter 4) with the optimistic and load-balanced parallel E-tree
// strategies, then predict how the run would scale on a simulated
// network of workstations.
package main

import (
	"fmt"
	"time"

	"freepdm/internal/core"
	"freepdm/internal/mining/motif"
	"freepdm/internal/now"
	"freepdm/internal/seq"
)

func main() {
	corpus := seq.CyclinsSpec(42).Generate()
	fmt.Printf("corpus: %d sequences, average length %.0f\n",
		len(corpus), seq.AverageLength(corpus))

	params := motif.Params{MinOccur: 5, MaxMut: 0, MinLength: 12, MaxLength: 24}
	fmt.Printf("query: motifs *X* with |X| >= %d occurring exactly in >= %d sequences\n\n",
		params.MinLength, params.MinOccur)

	// Sequential discovery.
	start := time.Now()
	results := motif.Discover(corpus, params)
	fmt.Printf("sequential E-tree traversal (%v): %d active motifs\n",
		time.Since(start).Round(time.Millisecond), len(results))
	for _, r := range results {
		fmt.Printf("  *%s*  occurs in %d sequences\n", r.Pattern.Key(), int(r.Goodness))
	}

	// In-process parallel traversals agree.
	for _, strat := range []core.Strategy{core.Optimistic, core.LoadBalanced} {
		pr := motif.NewProblem(corpus, params)
		res, stats := core.SolveETT(pr, 8, strat)
		fmt.Printf("\n%s PETT with 8 workers: %d active motifs, %d evaluations",
			strat, len(pr.ActiveMotifs(res)), stats.Evaluated)
	}

	// Predict scaling on a simulated NOW, the chapter 4 experiment.
	trace := core.BuildTrace(motif.NewProblem(corpus, params))
	fmt.Printf("\n\nsimulated idle-workstation scaling (load-balanced + adaptive master):\n")
	seqCost := trace.TotalCost()
	for _, n := range []int{1, 5, 10, 20, 45} {
		depth := core.AdaptiveDepth(n)
		chunked := trace.Chunked(trace.TotalCost()/100, depth)
		tasks, pre := chunked.Tasks(core.LoadBalanced, depth)
		cl := &now.Cluster{Machines: now.Uniform(n), Overhead: seqCost / 2000, MasterPre: pre}
		r := cl.Run(tasks)
		fmt.Printf("  %2d machines: %5.1f work-units (speedup %.1fx, efficiency %.0f%%)\n",
			n, r.Makespan, now.Speedup(seqCost, r.Makespan),
			100*now.Efficiency(seqCost, r.Makespan, n))
	}
}
