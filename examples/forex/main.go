// Forex: the "Making Money in Foreign Exchange" application of
// section 5.6 — select high-confidence NyuMiner-RS rules on the first
// 13 years of a synthetic Yen/Dollar series, then trade the simple
// convert-and-return strategy over the second 13 years.
package main

import (
	"fmt"
	"math/rand"

	"freepdm/internal/fx"
)

func main() {
	pair := fx.Pairs[0] // yu: Japanese Yen vs U.S. Dollar
	fmt.Printf("pair %s (%s): %d trading days\n\n", pair.Name, pair.Long, pair.Days)

	rates := fx.GenerateRates(pair.Days+252+1, pair.Seed)
	d := fx.BuildDataset(pair.Name, rates)
	train, test := fx.SplitHalves(d)
	fmt.Printf("features: %v\n", fx.FeatureNames)
	fmt.Printf("training on %d days (~1972-1984), testing on %d days (~1985-1997)\n\n",
		len(train), len(test))

	rng := rand.New(rand.NewSource(pair.Seed))
	rules := fx.SelectTradingRules(d, train, 3, 0.80, 0.01, rng)
	fmt.Printf("rules selected at Cmin=80%%, Smin=1%%:\n")
	for _, r := range rules.Rules {
		fmt.Printf("  %s\n", r.Describe(d))
	}

	covered, correct := 0, 0
	for _, i := range test {
		pred, ok := rules.Classify(d.Instances[i].Vals)
		if !ok {
			continue
		}
		covered++
		if pred == d.Class(i) {
			correct++
		}
	}
	fmt.Printf("\ncovered %d of %d test days; accuracy on covered days %.1f%%\n",
		covered, len(test), 100*float64(correct)/float64(covered))

	w0 := fx.Trade(d, test, rates, rules, 0) // start in the first currency (Yen)
	w1 := fx.Trade(d, test, rates, rules, 1) // start in the second (Dollar)
	fmt.Printf("starting with 1000 Yen:    %7.0f Yen after 13 years (%+.1f%%)\n", 1000*w0, (w0-1)*100)
	fmt.Printf("starting with 1000 Dollar: %7.0f Dollar after 13 years (%+.1f%%)\n", 1000*w1, (w1-1)*100)
}
