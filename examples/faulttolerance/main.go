// Faulttolerance: demonstrate the chapter 7 software architecture —
// a Parallel NyuMiner-CV run on a PLinda server whose workers keep
// getting killed (owners reclaiming their workstations), with the
// process-watch table printed along the way. The result is identical
// to a failure-free run, PLinda's fault-tolerance guarantee.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"freepdm/internal/classify"
	"freepdm/internal/classify/nyuminer"
	"freepdm/internal/dataset"
	"freepdm/internal/parallel"
	"freepdm/internal/plinda"
)

func main() {
	d, err := dataset.Benchmark("diabetes", 7)
	if err != nil {
		log.Fatal(err)
	}
	train := d.AllIndexes()
	cfg := nyuminer.Config{}

	// Failure-free reference run.
	grow := func(dd *dataset.Dataset, ii []int) *classify.Tree { return nyuminer.Grow(dd, ii, cfg) }
	want, _ := classify.CVPrune(d, train, 8, grow, rand.New(rand.NewSource(99)))

	// The same program on a PLinda server under constant failure.
	srv := plinda.NewServer()
	defer srv.Close()
	done := make(chan struct{})
	var got *classify.PrunedTree
	go func() {
		defer close(done)
		var err error
		got, err = parallel.NyuMinerCV(srv, d, train, 8, 3, cfg, rand.New(rand.NewSource(99)))
		if err != nil {
			log.Fatal(err)
		}
	}()

	// Owners keep reclaiming the workstations.
	killer := time.NewTicker(15 * time.Millisecond)
	defer killer.Stop()
	victims := []string{"nmcv-worker-0", "nmcv-worker-1", "nmcv-worker-2"}
	k := 0
loop:
	for {
		select {
		case <-done:
			break loop
		case <-killer.C:
			srv.Kill(victims[k%len(victims)]) //nolint:errcheck
			k++
		}
	}

	fmt.Println("process watch (figure 7.6):")
	for _, p := range srv.Processes() {
		fmt.Printf("  %-16s %-16s incarnation %d\n", p.Name, p.Status, p.Incarnation)
	}
	fmt.Printf("\nfailures injected: %d, recoveries performed: %d\n", srv.Kills(), srv.Respawns())
	fmt.Printf("transactions: %d committed, %d aborted by failures\n", srv.Commits(), srv.Aborts())

	if got.LeafCount != want.LeafCount || got.Resub != want.Resub {
		log.Fatalf("MISMATCH: failure run selected (%d leaves, %d errors), failure-free run (%d, %d)",
			got.LeafCount, got.Resub, want.LeafCount, want.Resub)
	}
	fmt.Printf("\nresult identical to the failure-free run: %d-leaf pruned tree, %d resubstitution errors\n",
		got.LeafCount, got.Resub)
	fmt.Printf("training accuracy %.1f%%\n", 100*got.Accuracy(d, train))
}
