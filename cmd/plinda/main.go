// Command plinda is the chapter 7 runtime environment as a terminal
// console instead of the original X-Windows interface: it starts a
// PLinda server running a long parallel data mining demo (sequence
// pattern discovery over the cyclins-like corpus) and accepts the
// process-control commands of section 7.2.5 on standard input:
//
//	ps                 the "Process Watch" table (figure 7.6)
//	kill <name>        simulate an owner reclaiming the workstation
//	migrate <name>     move a process (kill + recover elsewhere)
//	suspend <name>     pause a process at its next tuple operation
//	resume <name>      let a suspended process continue
//	checkpoint <file>  checkpoint the tuple space to disk
//	restore <file>     roll the tuple space back to a checkpoint
//	stats              metrics-registry snapshot (counters/gauges/latencies)
//	trace [n]          last n trace events (default 20)
//	quit               shut the server down
//
// With -debug-addr the same counters, the trace ring, and net/http/pprof
// are served over HTTP at /debug/metrics, /debug/trace and /debug/pprof/,
// plus a Prometheus text exposition of the registry at /metrics.
// -trace-sample, -slow-op and -log-json control trace sampling, the
// slow-operation log, and JSON-lines structured logging.
//
// With -wal <dir> the tuple space is write-ahead logged: committed
// tuple operations survive a server crash, and a restart with the same
// -wal directory replays them before accepting work. With -addr the
// space is additionally served over TCP so remote workstations can
// join (and leave, and be killed) freely:
//
//	plinda -wal /tmp/demo.wal -addr :7117     # durable server + demo
//	plinda -worker host:7117                  # remote worker; kill -9 at will
//
// A remote worker holds a session lease; when it is killed mid
// transaction the server aborts the transaction and its task tuples
// reappear for the remaining workers. The demo keeps running (and
// finishing, and producing correct results) no matter how often its
// workers are killed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"freepdm/internal/cluster"
	"freepdm/internal/core"
	"freepdm/internal/durable"
	"freepdm/internal/faultnet"
	"freepdm/internal/mining/motif"
	"freepdm/internal/obs"
	"freepdm/internal/plinda"
	"freepdm/internal/seq"
	"freepdm/internal/tuplespace"
)

// validateWALFlags checks the durability flags for consistency: the
// group-commit options only modify WAL behavior, so without -wal they
// are silently dead configuration — better to refuse than to let an
// operator believe fsync durability is on.
func validateWALFlags(walDir string, fsync bool, walBatch int) error {
	if walBatch < 0 {
		return fmt.Errorf("-wal-batch must be >= 0, got %d", walBatch)
	}
	if walDir == "" {
		if fsync {
			return fmt.Errorf("-fsync requires -wal")
		}
		if walBatch != 0 {
			return fmt.Errorf("-wal-batch requires -wal")
		}
	}
	return nil
}

// parseChaosSpec parses the -chaos flag: comma-separated key=value
// pairs from {delay=<duration>, err=<probability 0..1>, seed=<uint>}.
func parseChaosSpec(spec string) (faultnet.StoreOptions, error) {
	var opts faultnet.StoreOptions
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return opts, fmt.Errorf("bad element %q, want key=value", kv)
		}
		switch k {
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return opts, fmt.Errorf("bad delay %q: %v", v, err)
			}
			opts.Delay = d
		case "err":
			var p float64
			if _, err := fmt.Sscanf(v, "%g", &p); err != nil || p < 0 || p > 1 {
				return opts, fmt.Errorf("bad err %q: want a probability in [0,1]", v)
			}
			opts.ErrRate = p
		case "seed":
			var s int64
			if _, err := fmt.Sscanf(v, "%d", &s); err != nil {
				return opts, fmt.Errorf("bad seed %q: %v", v, err)
			}
			opts.Seed = s
		default:
			return opts, fmt.Errorf("unknown key %q (want delay, err or seed)", k)
		}
	}
	return opts, nil
}

// demoProblem builds the motif-discovery demo deterministically, so a
// remote worker process constructs exactly the same problem (and
// decodes the same pattern keys) as the server.
func demoProblem() *motif.Problem {
	corpus := seq.CyclinsSpec(42).Generate()
	return motif.NewProblem(corpus, motif.Params{
		MinOccur: 5, MaxMut: 0, MinLength: 12, MaxLength: 24,
	})
}

func main() {
	debugAddr := flag.String("debug-addr", "", "serve /debug/metrics, /debug/trace and pprof on this address (e.g. localhost:6060)")
	shards := flag.Int("shards", 0, "tuple-space shard count (rounded up to a power of two; 0 = derive from GOMAXPROCS)")
	walDir := flag.String("wal", "", "write-ahead log directory: committed tuple ops survive a crash and replay on restart")
	fsync := flag.Bool("fsync", false, "fsync every WAL group commit (survives machine crashes, not just process crashes; requires -wal)")
	walBatch := flag.Int("wal-batch", 0, "max records coalesced into one WAL group-commit write (0 = default; requires -wal)")
	addr := flag.String("addr", "", "serve the tuple space over TCP on this address so remote workers can join (e.g. :7117)")
	workers := flag.Int("workers", 3, "local demo worker count")
	workerAddr := flag.String("worker", "", "run as a remote worker against the server at this address (no local server); a comma-separated list joins a cluster")
	nodes := flag.String("nodes", "", "comma-separated tuple-space server addresses: route the space across a multi-node cluster instead of hosting it in-process (host:port,host:port,...)")
	opTimeout := flag.Duration("op-timeout", 2*time.Second, "bound on non-blocking remote tuple ops in cluster/worker mode (0 = none)")
	chaos := flag.String("chaos", "", "dev-only fault injection on the local store: \"delay=5ms,err=0.01,seed=42\" (delay per op, error probability, deterministic seed)")
	traceSample := flag.Float64("trace-sample", 1, "fraction of new traces to sample, 0..1 (children always follow their parent)")
	slowOp := flag.Duration("slow-op", 0, "log every span at least this long as a slow op (0 disables)")
	logJSON := flag.String("log-json", "", "write JSON-lines structured logs to stderr at this level (debug|info|warn|error)")
	flag.Parse()

	if err := validateWALFlags(*walDir, *fsync, *walBatch); err != nil {
		fmt.Fprintf(os.Stderr, "plinda: %v\n", err)
		os.Exit(2)
	}

	if *logJSON != "" {
		obs.SetDefault(obs.NewLogger(os.Stderr, obs.ParseLevel(*logJSON)))
	}

	if *workerAddr != "" {
		os.Exit(runRemoteWorker(*workerAddr, *opTimeout))
	}

	if *nodes != "" && (*walDir != "" || *addr != "") {
		fmt.Fprintln(os.Stderr, "plinda: -nodes is incompatible with -wal and -addr: durability and serving live on the member servers")
		os.Exit(2)
	}

	var space *tuplespace.Space
	var store tuplespace.TxnStore
	var backend tuplespace.ServerBackend
	if *nodes != "" {
		rt, err := cluster.New(strings.Split(*nodes, ","), cluster.Options{
			Dial: tuplespace.DialOptions{
				DialTimeout: 2 * time.Second,
				OpTimeout:   *opTimeout,
				Lease:       3 * time.Second,
				Name:        fmt.Sprintf("plinda-%d", os.Getpid()),
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "plinda: cluster: %v\n", err)
			os.Exit(1)
		}
		store = rt
		// Member servers that ran (or hosted) an earlier demo still hold
		// its broadcast poison pills; drain the ones visible on the
		// routed task path so they cannot kill this run's workers at
		// birth — the same startup hygiene the WAL branch performs.
		drained := 0
		for {
			_, ok, err := tuplespace.Inp(rt, core.TagTask, core.PoisonKey)
			if err != nil || !ok {
				break
			}
			drained++
		}
		if drained > 0 {
			fmt.Printf("plinda: drained %d stale poison tuples from the cluster\n", drained)
		}
	} else {
		space = tuplespace.NewSpace(tuplespace.Options{Shards: *shards})
		store, backend = space, space
	}
	if *walDir != "" {
		ds, err := durable.Open(*walDir, space, durable.Options{Fsync: *fsync, MaxBatch: *walBatch})
		if err != nil {
			fmt.Fprintf(os.Stderr, "plinda: wal: %v\n", err)
			os.Exit(1)
		}
		if n := ds.Replayed(); n > 0 {
			fmt.Printf("plinda: replayed %d WAL records from %s\n", n, *walDir)
		}
		store = ds
		backend = ds
		// A completed earlier run leaves its broadcast poison pills in
		// the durable space; drain them so they cannot kill this run's
		// workers at birth.
		drained := 0
		for {
			_, ok, err := tuplespace.Inp(ds, core.TagTask, core.PoisonKey)
			if err != nil || !ok {
				break
			}
			drained++
		}
		if drained > 0 {
			fmt.Printf("plinda: drained %d stale poison tuples\n", drained)
		}
	}
	if *chaos != "" {
		copts, err := parseChaosSpec(*chaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plinda: -chaos: %v\n", err)
			os.Exit(2)
		}
		// The wrapper sits between the server and whatever store was
		// selected above (in-process, durable, or routed): every demo
		// tuple op takes the injected delay and error rate, while remote
		// workers served via -addr still hit the raw backend.
		store = faultnet.WrapStore(store, copts)
		fmt.Printf("plinda: chaos store enabled (%s)\n", *chaos)
	}
	srv := plinda.NewServerOnStore(store)
	defer srv.Close()
	defer store.Close() //nolint:errcheck

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(4096)
	tracer.SetSampleRate(*traceSample)
	if *slowOp > 0 {
		tracer.SetSlowOp(*slowOp, nil)
	}
	srv.Observe(reg, tracer)
	core.SetObserver(reg, tracer)
	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, reg, tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plinda: debug server: %v\n", err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Printf("plinda: debug endpoints at http://%s/debug/{metrics,trace,pprof}\n", ds.Addr())
	}
	if *addr != "" {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plinda: listen: %v\n", err)
			os.Exit(1)
		}
		defer ln.Close()
		go tuplespace.Serve(ln, backend) //nolint:errcheck — ends when ln closes
		fmt.Printf("plinda: serving tuple space on %s (plinda -worker %s to join)\n", ln.Addr(), ln.Addr())
	}

	if space != nil {
		fmt.Printf("plinda: starting server (%d tuple-space shards) and the motif-discovery demo (%d workers)\n", space.Shards(), *workers)
	} else {
		fmt.Printf("plinda: starting server (tuple space routed across %s) and the motif-discovery demo (%d workers)\n", *nodes, *workers)
	}
	pr := demoProblem()
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := core.RunPLET(srv, pr, *workers)
		if err != nil {
			fmt.Printf("plinda: demo failed: %v\n", err)
			return
		}
		if *addr != "" {
			// Extra poison so remote workers (beyond the local count the
			// master poisoned) terminate too.
			extra := make([]tuplespace.Tuple, 16)
			for i := range extra {
				// lint:ignore tuple-contract consumed by the PLET workers in internal/core
				extra[i] = tuplespace.Tuple{core.TagTask, core.PoisonKey}
			}
			if err := tuplespace.OutN(store, extra); err != nil {
				fmt.Printf("plinda: remote poison: %v\n", err)
			}
		}
		fmt.Printf("\nplinda: demo finished — %d active motifs:\n", len(pr.ActiveMotifs(res)))
		for _, r := range pr.ActiveMotifs(res) {
			fmt.Printf("  *%s* occurs in %d sequences\n", r.Pattern.Key(), int(r.Goodness))
		}
		fmt.Print("> ")
	}()

	// Wait for the demo processes to register before accepting
	// commands, so scripted input sees a populated process table.
	for i := 0; i < 200 && len(srv.Processes()) == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		cmd := fields[0]
		arg := ""
		if len(fields) > 1 {
			arg = fields[1]
		}
		switch cmd {
		case "ps":
			fmt.Printf("%-18s %-16s %s\n", "PROCESS", "STATUS", "INCARNATION")
			for _, p := range srv.Processes() {
				fmt.Printf("%-18s %-16s %d\n", p.Name, p.Status, p.Incarnation)
			}
		case "kill", "migrate":
			if err := srv.Kill(arg); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%s: incarnation destroyed; recovery scheduled\n", arg)
			}
		case "suspend":
			if err := srv.Suspend(arg); err != nil {
				fmt.Println("error:", err)
			}
		case "resume":
			if err := srv.Resume(arg); err != nil {
				fmt.Println("error:", err)
			}
		case "checkpoint":
			if arg == "" {
				fmt.Println("usage: checkpoint <file>")
				break
			}
			f, err := os.Create(arg)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if err := srv.Checkpoint(f); err != nil {
				fmt.Println("error:", err)
			}
			f.Close()
			fmt.Printf("tuple space checkpointed to %s\n", arg)
		case "restore":
			f, err := os.Open(arg)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if err := srv.RestoreCheckpoint(f); err != nil {
				fmt.Println("error:", err)
			}
			f.Close()
			fmt.Println("tuple space rolled back")
		case "stats":
			tuples, err := store.Len()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("commits=%d aborts=%d kills=%d recoveries=%d tuples=%d\n",
				srv.Commits(), srv.Aborts(), srv.Kills(), srv.Respawns(), tuples)
			printSnapshot(reg.Snapshot())
		case "trace":
			n := 20
			if arg != "" {
				fmt.Sscanf(arg, "%d", &n)
			}
			evs := tracer.Events()
			if len(evs) > n {
				evs = evs[len(evs)-n:]
			}
			for _, e := range evs {
				line := fmt.Sprintf("%s %-6s %-10s", e.Time.Format("15:04:05.000"), e.Kind, e.Name)
				if e.Dur > 0 {
					line += fmt.Sprintf(" dur=%s", e.Dur)
				}
				for _, k := range sortedKeys(e.Attrs) {
					line += fmt.Sprintf(" %s=%v", k, e.Attrs[k])
				}
				fmt.Println(line)
			}
			fmt.Printf("(%d of %d recorded events)\n", len(evs), tracer.Total())
		case "quit", "exit":
			return
		default:
			fmt.Println("commands: ps, kill <p>, migrate <p>, suspend <p>, resume <p>, checkpoint <f>, restore <f>, stats, trace [n], quit")
		}
		fmt.Print("> ")
	}
}

// runRemoteWorker joins the demo as a remote workstation: it dials the
// server with a heartbeat lease and runs the PLET worker body under a
// standalone proc. If the process is killed (or the connection drops),
// the server's lease machinery aborts its open transaction so the
// task reappears; if the server restarts, the worker redials. Returns
// a process exit code.
func runRemoteWorker(addr string, opTimeout time.Duration) int {
	pr := demoProblem()
	name := fmt.Sprintf("remote-%d", os.Getpid())
	fmt.Printf("plinda worker %s: joining %s\n", name, addr)
	worker := core.PLETWorker(pr)
	dialOpts := tuplespace.DialOptions{
		DialTimeout: 2 * time.Second,
		OpTimeout:   opTimeout,
		Lease:       3 * time.Second,
		Name:        name,
	}
	dial := func() (tuplespace.TxnStore, error) {
		if addrs := strings.Split(addr, ","); len(addrs) > 1 {
			return cluster.New(addrs, cluster.Options{Dial: dialOpts})
		}
		return tuplespace.DialOpts(addr, dialOpts)
	}
	var lastErr error
	for attempt := 0; attempt <= plinda.MaxRespawns; attempt++ {
		cl, err := dial()
		if err != nil {
			lastErr = err
			time.Sleep(200 * time.Millisecond)
			continue
		}
		err = worker(plinda.Standalone(cl))
		cl.Close()
		if err == nil {
			fmt.Printf("plinda worker %s: done\n", name)
			return 0
		}
		lastErr = err
		fmt.Fprintf(os.Stderr, "plinda worker %s: incarnation failed: %v (retrying)\n", name, err)
		time.Sleep(200 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "plinda worker %s: giving up: %v\n", name, lastErr)
	return 1
}

// printSnapshot renders a registry snapshot as sorted name=value lines,
// summarizing histograms by count/mean/max.
func printSnapshot(s obs.Snapshot) {
	for _, k := range sortedKeys(s.Counters) {
		fmt.Printf("  %-24s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Printf("  %-24s %d\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		if h.Count == 0 {
			fmt.Printf("  %-24s count=0\n", k)
			continue
		}
		mean := time.Duration(h.SumNanos / h.Count)
		fmt.Printf("  %-24s count=%d mean=%s max=%s\n", k, h.Count, mean, time.Duration(h.MaxNanos))
	}
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
