// Command plinda is the chapter 7 runtime environment as a terminal
// console instead of the original X-Windows interface: it starts a
// PLinda server running a long parallel data mining demo (sequence
// pattern discovery over the cyclins-like corpus) and accepts the
// process-control commands of section 7.2.5 on standard input:
//
//	ps                 the "Process Watch" table (figure 7.6)
//	kill <name>        simulate an owner reclaiming the workstation
//	migrate <name>     move a process (kill + recover elsewhere)
//	suspend <name>     pause a process at its next tuple operation
//	resume <name>      let a suspended process continue
//	checkpoint <file>  checkpoint the tuple space to disk
//	restore <file>     roll the tuple space back to a checkpoint
//	stats              metrics-registry snapshot (counters/gauges/latencies)
//	trace [n]          last n trace events (default 20)
//	quit               shut the server down
//
// With -debug-addr the same counters, the trace ring, and net/http/pprof
// are served over HTTP at /debug/metrics, /debug/trace and /debug/pprof/.
//
// The demo keeps running (and finishing, and producing correct
// results) no matter how often its workers are killed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"freepdm/internal/core"
	"freepdm/internal/mining/motif"
	"freepdm/internal/obs"
	"freepdm/internal/plinda"
	"freepdm/internal/seq"
	"freepdm/internal/tuplespace"
)

func main() {
	debugAddr := flag.String("debug-addr", "", "serve /debug/metrics, /debug/trace and pprof on this address (e.g. localhost:6060)")
	shards := flag.Int("shards", 0, "tuple-space shard count (rounded up to a power of two; 0 = derive from GOMAXPROCS)")
	flag.Parse()

	space := tuplespace.NewSharded(*shards)
	srv := plinda.NewServerOn(space)
	defer srv.Close()

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(4096)
	srv.Observe(reg, tracer)
	core.SetObserver(reg, tracer)
	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, reg, tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plinda: debug server: %v\n", err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Printf("plinda: debug endpoints at http://%s/debug/{metrics,trace,pprof}\n", ds.Addr())
	}

	fmt.Printf("plinda: starting server (%d tuple-space shards) and the motif-discovery demo (3 workers)\n", space.Shards())
	corpus := seq.CyclinsSpec(42).Generate()
	pr := motif.NewProblem(corpus, motif.Params{
		MinOccur: 5, MaxMut: 0, MinLength: 12, MaxLength: 24,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := core.RunPLET(srv, pr, 3)
		if err != nil {
			fmt.Printf("plinda: demo failed: %v\n", err)
			return
		}
		fmt.Printf("\nplinda: demo finished — %d active motifs:\n", len(pr.ActiveMotifs(res)))
		for _, r := range pr.ActiveMotifs(res) {
			fmt.Printf("  *%s* occurs in %d sequences\n", r.Pattern.Key(), int(r.Goodness))
		}
		fmt.Print("> ")
	}()

	// Wait for the demo processes to register before accepting
	// commands, so scripted input sees a populated process table.
	for i := 0; i < 200 && len(srv.Processes()) == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		cmd := fields[0]
		arg := ""
		if len(fields) > 1 {
			arg = fields[1]
		}
		switch cmd {
		case "ps":
			fmt.Printf("%-18s %-16s %s\n", "PROCESS", "STATUS", "INCARNATION")
			for _, p := range srv.Processes() {
				fmt.Printf("%-18s %-16s %d\n", p.Name, p.Status, p.Incarnation)
			}
		case "kill", "migrate":
			if err := srv.Kill(arg); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%s: incarnation destroyed; recovery scheduled\n", arg)
			}
		case "suspend":
			if err := srv.Suspend(arg); err != nil {
				fmt.Println("error:", err)
			}
		case "resume":
			if err := srv.Resume(arg); err != nil {
				fmt.Println("error:", err)
			}
		case "checkpoint":
			if arg == "" {
				fmt.Println("usage: checkpoint <file>")
				break
			}
			f, err := os.Create(arg)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if err := srv.Checkpoint(f); err != nil {
				fmt.Println("error:", err)
			}
			f.Close()
			fmt.Printf("tuple space checkpointed to %s\n", arg)
		case "restore":
			f, err := os.Open(arg)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if err := srv.RestoreCheckpoint(f); err != nil {
				fmt.Println("error:", err)
			}
			f.Close()
			fmt.Println("tuple space rolled back")
		case "stats":
			fmt.Printf("commits=%d aborts=%d kills=%d recoveries=%d tuples=%d\n",
				srv.Commits(), srv.Aborts(), srv.Kills(), srv.Respawns(), srv.Space().Len())
			printSnapshot(reg.Snapshot())
		case "trace":
			n := 20
			if arg != "" {
				fmt.Sscanf(arg, "%d", &n)
			}
			evs := tracer.Events()
			if len(evs) > n {
				evs = evs[len(evs)-n:]
			}
			for _, e := range evs {
				line := fmt.Sprintf("%s %-6s %-10s", e.Time.Format("15:04:05.000"), e.Kind, e.Name)
				if e.Dur > 0 {
					line += fmt.Sprintf(" dur=%s", e.Dur)
				}
				for _, k := range sortedKeys(e.Attrs) {
					line += fmt.Sprintf(" %s=%v", k, e.Attrs[k])
				}
				fmt.Println(line)
			}
			fmt.Printf("(%d of %d recorded events)\n", len(evs), tracer.Total())
		case "quit", "exit":
			return
		default:
			fmt.Println("commands: ps, kill <p>, migrate <p>, suspend <p>, resume <p>, checkpoint <f>, restore <f>, stats, trace [n], quit")
		}
		fmt.Print("> ")
	}
}

// printSnapshot renders a registry snapshot as sorted name=value lines,
// summarizing histograms by count/mean/max.
func printSnapshot(s obs.Snapshot) {
	for _, k := range sortedKeys(s.Counters) {
		fmt.Printf("  %-24s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Printf("  %-24s %d\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		if h.Count == 0 {
			fmt.Printf("  %-24s count=0\n", k)
			continue
		}
		mean := time.Duration(h.SumNanos / h.Count)
		fmt.Printf("  %-24s count=%d mean=%s max=%s\n", k, h.Count, mean, time.Duration(h.MaxNanos))
	}
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
