package main

import (
	"bufio"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"freepdm/internal/obs"
)

// TestValidateWALFlags pins the durability-flag contract: -fsync and
// -wal-batch are refused without -wal (dead configuration an operator
// would mistake for real durability), and -wal-batch rejects negatives.
func TestValidateWALFlags(t *testing.T) {
	cases := []struct {
		name     string
		walDir   string
		fsync    bool
		walBatch int
		wantErr  bool
	}{
		{name: "defaults", wantErr: false},
		{name: "wal alone", walDir: "d", wantErr: false},
		{name: "wal+fsync", walDir: "d", fsync: true, wantErr: false},
		{name: "wal+batch", walDir: "d", walBatch: 64, wantErr: false},
		{name: "fsync without wal", fsync: true, wantErr: true},
		{name: "batch without wal", walBatch: 8, wantErr: true},
		{name: "negative batch", walDir: "d", walBatch: -1, wantErr: true},
	}
	for _, tc := range cases {
		err := validateWALFlags(tc.walDir, tc.fsync, tc.walBatch)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: validateWALFlags(%q, %v, %d) = %v, wantErr=%v",
				tc.name, tc.walDir, tc.fsync, tc.walBatch, err, tc.wantErr)
		}
	}
}

// TestParseChaosSpec pins the -chaos flag grammar: the documented
// keys parse into faultnet.StoreOptions, anything else is refused.
func TestParseChaosSpec(t *testing.T) {
	opts, err := parseChaosSpec("delay=5ms,err=0.25,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if opts.Delay != 5*time.Millisecond || opts.ErrRate != 0.25 || opts.Seed != 42 {
		t.Fatalf("parseChaosSpec = %+v", opts)
	}
	for _, bad := range []string{
		"delay", "delay=-1ms", "err=2", "err=x", "seed=abc", "rate=0.1",
	} {
		if _, err := parseChaosSpec(bad); err == nil {
			t.Errorf("parseChaosSpec(%q) accepted", bad)
		}
	}
}

// TestFsyncFlagBoot boots the binary with -wal -fsync -wal-batch and
// lets the demo run to completion: the full workload committing
// through the fsync group-commit pipeline, then a clean quit.
func TestFsyncFlagBoot(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the plinda binary")
	}
	exe := filepath.Join(t.TempDir(), "plinda")
	if out, err := exec.Command("go", "build", "-o", exe, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// An invalid combination must be refused before boot.
	if out, err := exec.Command(exe, "-fsync").CombinedOutput(); err == nil {
		t.Errorf("-fsync without -wal was accepted:\n%s", out)
	} else if !strings.Contains(string(out), "-fsync requires -wal") {
		t.Errorf("-fsync without -wal: unexpected output %q", out)
	}

	cmd := exec.Command(exe, "-wal", filepath.Join(t.TempDir(), "wal"),
		"-fsync", "-wal-batch", "32", "-workers", "2")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		stdin.Close()
		cmd.Process.Kill() //nolint:errcheck — cleanup for early Fatals
		cmd.Wait()         //nolint:errcheck
	}()
	// Wait for the demo to finish (the prompt follows the summary), then
	// quit; a zero exit proves the WAL closed cleanly in fsync mode.
	done := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "motifs") {
				close(done)
				break
			}
		}
		io.Copy(io.Discard, out) //nolint:errcheck — keep the pipe drained
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("demo never completed under -fsync")
	}
	if _, err := io.WriteString(stdin, "quit\n"); err != nil {
		t.Fatal(err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()
	select {
	case err := <-waitCh:
		if err != nil {
			t.Fatalf("plinda exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("plinda did not exit on quit")
	}
}

// TestMetricsSmoke is the CI smoke check for the observability surface:
// it builds and boots the real plinda binary with a live debug
// endpoint, scrapes /metrics while the demo runs, and validates the
// exposition with the strict Prometheus text-format parser — per-shard
// gauge labels and histogram buckets included. The console must then
// shut down cleanly on "quit".
func TestMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the plinda binary")
	}
	exe := filepath.Join(t.TempDir(), "plinda")
	if out, err := exec.Command("go", "build", "-o", exe, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(exe,
		"-debug-addr", "127.0.0.1:0", "-workers", "2",
		"-trace-sample", "1", "-slow-op", "1s", "-log-json", "info")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		stdin.Close()
		cmd.Process.Kill() //nolint:errcheck — cleanup for early Fatals
		cmd.Wait()         //nolint:errcheck
	}()

	// The binary announces the resolved debug address on stdout.
	addrRe := regexp.MustCompile(`debug endpoints at http://([^/]+)/`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
				break
			}
		}
		io.Copy(io.Discard, stdout) //nolint:errcheck — keep the pipe drained
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("binary never announced its debug address")
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if err := obs.CheckPrometheusText(strings.NewReader(string(body))); err != nil {
		t.Fatalf("/metrics failed the Prometheus text-format check: %v\n%s", err, body)
	}
	for _, want := range []string{
		`fpdm_ts_shard_tuples{shard="0"}`,
		"fpdm_plinda_txn_seconds_bucket{le=",
		"fpdm_trace_events_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The trace endpoint must serve JSON beside the Prometheus text.
	tresp, err := http.Get("http://" + addr + "/debug/trace?n=5")
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if !strings.Contains(string(tbody), `"total"`) {
		t.Errorf("/debug/trace response lacks totals: %s", tbody)
	}

	if _, err := io.WriteString(stdin, "quit\n"); err != nil {
		t.Fatal(err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()
	select {
	case err := <-waitCh:
		if err != nil {
			t.Fatalf("plinda exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("plinda did not exit on quit")
	}
}
