package main

import (
	"bufio"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"freepdm/internal/obs"
)

// TestMetricsSmoke is the CI smoke check for the observability surface:
// it builds and boots the real plinda binary with a live debug
// endpoint, scrapes /metrics while the demo runs, and validates the
// exposition with the strict Prometheus text-format parser — per-shard
// gauge labels and histogram buckets included. The console must then
// shut down cleanly on "quit".
func TestMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the plinda binary")
	}
	exe := filepath.Join(t.TempDir(), "plinda")
	if out, err := exec.Command("go", "build", "-o", exe, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(exe,
		"-debug-addr", "127.0.0.1:0", "-workers", "2",
		"-trace-sample", "1", "-slow-op", "1s", "-log-json", "info")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		stdin.Close()
		cmd.Process.Kill() //nolint:errcheck — cleanup for early Fatals
		cmd.Wait()         //nolint:errcheck
	}()

	// The binary announces the resolved debug address on stdout.
	addrRe := regexp.MustCompile(`debug endpoints at http://([^/]+)/`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
				break
			}
		}
		io.Copy(io.Discard, stdout) //nolint:errcheck — keep the pipe drained
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("binary never announced its debug address")
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if err := obs.CheckPrometheusText(strings.NewReader(string(body))); err != nil {
		t.Fatalf("/metrics failed the Prometheus text-format check: %v\n%s", err, body)
	}
	for _, want := range []string{
		`fpdm_ts_shard_tuples{shard="0"}`,
		"fpdm_plinda_txn_seconds_bucket{le=",
		"fpdm_trace_events_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The trace endpoint must serve JSON beside the Prometheus text.
	tresp, err := http.Get("http://" + addr + "/debug/trace?n=5")
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if !strings.Contains(string(tbody), `"total"`) {
		t.Errorf("/debug/trace response lacks totals: %s", tbody)
	}

	if _, err := io.WriteString(stdin, "quit\n"); err != nil {
		t.Fatal(err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()
	select {
	case err := <-waitCh:
		if err != nil {
			t.Fatalf("plinda exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("plinda did not exit on quit")
	}
}
