// Lindalint statically checks the tuple-space protocol contracts of
// this module: it loads packages through go/types and verifies that
// every Out has a matching In, that formals stay out of stored
// tuples, that blocking operations are not reachable under a lock,
// and that tuple-op errors are handled. See README.md ("Static
// analysis") for the check catalogue and the suppression syntax.
//
// Usage:
//
//	lindalint [-checks list] [packages]
//
// Packages are directory patterns relative to the current directory
// ("./..." by default, recursing like the go tool). The exit status
// is 0 when the tree is clean, 1 when findings are reported, and 2
// when loading or type-checking fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"freepdm/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated checks to run (default: all of "+strings.Join(lint.AllChecks, ",")+")")
	flag.Parse()

	var enabled map[string]bool
	if *checksFlag != "" {
		enabled = make(map[string]bool)
		known := make(map[string]bool)
		for _, c := range lint.AllChecks {
			known[c] = true
		}
		for _, c := range strings.Split(*checksFlag, ",") {
			c = strings.TrimSpace(c)
			if !known[c] {
				fmt.Fprintf(os.Stderr, "lindalint: unknown check %q (have %s)\n", c, strings.Join(lint.AllChecks, ", "))
				os.Exit(2)
			}
			enabled[c] = true
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	dirs, err := loader.Expand(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		ps, err := loader.Load(dir)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, ps...)
	}

	findings := lint.Run(pkgs, enabled)
	for _, f := range findings {
		if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lindalint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lindalint:", err)
	os.Exit(2)
}
