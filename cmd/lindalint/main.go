// Lindalint statically checks the tuple-space protocol contracts of
// this module: it loads packages through go/types and verifies that
// every Out has a matching In, that formals stay out of stored
// tuples, that blocking operations are not reachable under a lock,
// that tuple-op errors are handled — and, through the whole-program
// tuple-flow graph, that no blocking In can wait forever
// (tuple-deadlock), no tag accumulates unconsumed (tuple-leak), and
// every worker receive loop honors the poison key
// (poison-propagation). See README.md ("Static analysis") for the
// check catalogue and the suppression syntax.
//
// Usage:
//
//	lindalint [-checks list] [-json] [-graph] [packages]
//
// Packages are directory patterns relative to the current directory
// ("./..." by default, recursing like the go tool). -json emits one
// diagnostic object per line (file, line, col, check, message,
// suppressed — suppressed findings are included, marked) instead of
// text. -graph emits the tuple-flow graph of the loaded packages as
// GraphViz DOT and reports nothing. The exit status is 0 when the
// tree is clean, 1 when findings are reported, and 2 when loading or
// type-checking fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"freepdm/internal/lint"
)

// diagnostic is the -json wire shape, one object per line.
type diagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Check      string `json:"check"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	checksFlag := flag.String("checks", "", "comma-separated checks to run (default: all of "+strings.Join(lint.AllChecks, ",")+")")
	jsonFlag := flag.Bool("json", false, "emit one JSON diagnostic per line, including suppressed findings (marked)")
	graphFlag := flag.Bool("graph", false, "emit the tuple-flow graph of the loaded packages as GraphViz DOT and exit")
	flag.Parse()

	var enabled map[string]bool
	if *checksFlag != "" {
		enabled = make(map[string]bool)
		known := make(map[string]bool)
		for _, c := range lint.AllChecks {
			known[c] = true
		}
		for _, c := range strings.Split(*checksFlag, ",") {
			c = strings.TrimSpace(c)
			if !known[c] {
				fmt.Fprintf(os.Stderr, "lindalint: unknown check %q (have %s)\n", c, strings.Join(lint.AllChecks, ", "))
				os.Exit(2)
			}
			enabled[c] = true
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	dirs, err := loader.Expand(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		ps, err := loader.Load(dir)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, ps...)
	}

	if *graphFlag {
		os.Stdout.Write(lint.DOT(pkgs))
		return
	}

	rel := func(name string) string {
		if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}

	reported := 0
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range lint.RunAll(pkgs, enabled) {
			if !f.Suppressed {
				reported++
			}
			if err := enc.Encode(diagnostic{
				File:       rel(f.Pos.Filename),
				Line:       f.Pos.Line,
				Col:        f.Pos.Column,
				Check:      f.Check,
				Message:    f.Msg,
				Suppressed: f.Suppressed,
			}); err != nil {
				fatal(err)
			}
		}
	} else {
		for _, f := range lint.Run(pkgs, enabled) {
			reported++
			f.Pos.Filename = rel(f.Pos.Filename)
			fmt.Println(f)
		}
	}
	if reported > 0 {
		fmt.Fprintf(os.Stderr, "lindalint: %d finding(s) in %d package(s)\n", reported, len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lindalint:", err)
	os.Exit(2)
}
