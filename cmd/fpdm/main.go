// Command fpdm is the experiment and demo driver of the Free Parallel
// Data Mining reproduction. Usage:
//
//	fpdm list                       list all reproducible tables and figures
//	fpdm [-debug-addr a] exp <id>...  run experiments by id (e.g. t4.2 f6.3); "all" runs everything
//
// With -debug-addr, live metrics, the operation trace, and pprof are
// served while experiments run, at /debug/metrics, /debug/trace and
// /debug/pprof/ on the given address, with a Prometheus text
// exposition at /metrics. -trace-sample, -slow-op and -log-json
// control trace sampling, the slow-operation log, and JSON-lines
// structured logging.
package main

import (
	"flag"
	"fmt"
	"os"

	"freepdm/internal/core"
	"freepdm/internal/experiments"
	"freepdm/internal/obs"
)

func main() {
	debugAddr := flag.String("debug-addr", "", "serve /debug/metrics, /debug/trace and pprof on this address (e.g. localhost:6060)")
	traceSample := flag.Float64("trace-sample", 1, "fraction of new traces to sample, 0..1")
	slowOp := flag.Duration("slow-op", 0, "log every span at least this long as a slow op (0 disables)")
	logJSON := flag.String("log-json", "", "write JSON-lines structured logs to stderr at this level (debug|info|warn|error)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	if *logJSON != "" {
		obs.SetDefault(obs.NewLogger(os.Stderr, obs.ParseLevel(*logJSON)))
	}
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(4096)
		tracer.SetSampleRate(*traceSample)
		if *slowOp > 0 {
			tracer.SetSlowOp(*slowOp, nil)
		}
		core.SetObserver(reg, tracer)
		experiments.SetObserver(reg, tracer)
		ds, err := obs.ServeDebug(*debugAddr, reg, tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpdm: debug server: %v\n", err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "fpdm: debug endpoints at http://%s/debug/{metrics,trace,pprof}\n", ds.Addr())
	}
	switch args[0] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
	case "exp":
		ids := args[1:]
		if len(ids) == 0 {
			usage()
			os.Exit(2)
		}
		if len(ids) == 1 && ids[0] == "all" {
			ids = nil
			for _, e := range experiments.All() {
				ids = append(ids, e.ID)
			}
		}
		for _, id := range ids {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "fpdm: unknown experiment %q (try 'fpdm list')\n", id)
				os.Exit(1)
			}
			if err := e.Run(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "fpdm: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fpdm [-debug-addr addr] list | exp <id>...|all")
}
