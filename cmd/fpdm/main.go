// Command fpdm is the experiment and demo driver of the Free Parallel
// Data Mining reproduction. Usage:
//
//	fpdm list             list all reproducible tables and figures
//	fpdm exp <id>...      run experiments by id (e.g. t4.2 f6.3); "all" runs everything
package main

import (
	"fmt"
	"os"

	"freepdm/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
	case "exp":
		ids := os.Args[2:]
		if len(ids) == 0 {
			usage()
			os.Exit(2)
		}
		if len(ids) == 1 && ids[0] == "all" {
			ids = nil
			for _, e := range experiments.All() {
				ids = append(ids, e.ID)
			}
		}
		for _, id := range ids {
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "fpdm: unknown experiment %q (try 'fpdm list')\n", id)
				os.Exit(1)
			}
			if err := e.Run(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "fpdm: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fpdm list | fpdm exp <id>...|all")
}
