module freepdm

go 1.22
