// Benchmarks that regenerate every table and figure of the evaluation
// chapters of "Free Parallel Data Mining" (run with `go test -bench=.
// -benchmem`), one benchmark per artifact, plus ablation benches for
// the design choices called out in DESIGN.md. The heavyweight
// measurement passes are cached across iterations within a run, so
// b.N > 1 re-measures only the cheap assembly of each table.
package freepdm

import (
	"io"
	"testing"

	"freepdm/internal/experiments"
)

func init() {
	// Keep the full -bench=. sweep bounded: fewer train/test pairs for
	// the accuracy tables and fewer really-measured trials for the
	// chapter 6 series. `fpdm exp` uses the full settings.
	experiments.AccuracyPairs = 2
	experiments.Ch6Trials = 3
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Chapter 2 — the platform comparison.

func BenchmarkTable2_3(b *testing.B) { benchExperiment(b, "t2.3") }

// Chapter 4 — parallel biological pattern discovery.

func BenchmarkTable4_2(b *testing.B)   { benchExperiment(b, "t4.2") }
func BenchmarkFigure4_3(b *testing.B)  { benchExperiment(b, "f4.3") }
func BenchmarkFigure4_8(b *testing.B)  { benchExperiment(b, "f4.8") }
func BenchmarkFigure4_9(b *testing.B)  { benchExperiment(b, "f4.9") }
func BenchmarkFigure4_10(b *testing.B) { benchExperiment(b, "f4.10") }
func BenchmarkFigure4_11(b *testing.B) { benchExperiment(b, "f4.11") }
func BenchmarkFigure4_12(b *testing.B) { benchExperiment(b, "f4.12") }
func BenchmarkFigure4_13(b *testing.B) { benchExperiment(b, "f4.13") }
func BenchmarkFigure4_14(b *testing.B) { benchExperiment(b, "f4.14") }

// Chapter 5 — NyuMiner vs C4.5 and CART, foreign exchange.

func BenchmarkTable5_1(b *testing.B)  { benchExperiment(b, "t5.1") }
func BenchmarkTable5_2(b *testing.B)  { benchExperiment(b, "t5.2") }
func BenchmarkTable5_3(b *testing.B)  { benchExperiment(b, "t5.3") }
func BenchmarkTable5_4(b *testing.B)  { benchExperiment(b, "t5.4") }
func BenchmarkFigure5_6(b *testing.B) { benchExperiment(b, "f5.6") }
func BenchmarkTable5_5(b *testing.B)  { benchExperiment(b, "t5.5") }
func BenchmarkTable5_6(b *testing.B)  { benchExperiment(b, "t5.6") }

// Chapter 6 — parallel classification tree algorithms.

func BenchmarkTable6_1(b *testing.B)  { benchExperiment(b, "t6.1") }
func BenchmarkFigure6_3(b *testing.B) { benchExperiment(b, "f6.3") }
func BenchmarkFigure6_4(b *testing.B) { benchExperiment(b, "f6.4") }
func BenchmarkTable6_2(b *testing.B)  { benchExperiment(b, "t6.2") }
func BenchmarkFigure6_5(b *testing.B) { benchExperiment(b, "f6.5") }
func BenchmarkFigure6_6(b *testing.B) { benchExperiment(b, "f6.6") }
func BenchmarkTable6_3(b *testing.B)  { benchExperiment(b, "t6.3") }
func BenchmarkFigure6_7(b *testing.B) { benchExperiment(b, "f6.7") }
func BenchmarkFigure6_8(b *testing.B) { benchExperiment(b, "f6.8") }

// Ablations — the design choices DESIGN.md calls out.

func BenchmarkAblationEdagVsEtree(b *testing.B)       { benchExperiment(b, "a.edag") }
func BenchmarkAblationAdaptiveDepth(b *testing.B)     { benchExperiment(b, "a.adaptive") }
func BenchmarkAblationBoundaryPoints(b *testing.B)    { benchExperiment(b, "a.boundary") }
func BenchmarkAblationLogicalValues(b *testing.B)     { benchExperiment(b, "a.logical") }
func BenchmarkAblationSubpatternPruning(b *testing.B) { benchExperiment(b, "a.subpattern") }
func BenchmarkAblationTxnGranularity(b *testing.B)    { benchExperiment(b, "a.txn") }
func BenchmarkAblationPrefixTree(b *testing.B)        { benchExperiment(b, "a.prefixtree") }

// Future work (section 8.2) realized: frequent episode discovery.

func BenchmarkFutureWorkEpisodes(b *testing.B) { benchExperiment(b, "x.episode") }
